#!/usr/bin/env python
"""Montage under per-stage fault injection (the paper's MT1..MT4 study).

Shows (1) the fault-free pipeline and its mosaic statistics, (2) the
per-stage outcome profile under each fault model, and (3) the Fig. 9
black-stripe artifact a dropped mAdd write produces.
"""

from repro import Campaign, CampaignConfig, FFISFileSystem, mount
from repro.apps.montage import MontageApplication, STAGES
from repro.experiments import run_figure9

N_RUNS = 50


def fault_free(app: MontageApplication) -> None:
    fs = FFISFileSystem()
    with mount(fs) as mp:
        golden = app.capture_golden(mp)
        print("fault-free pipeline:")
        for span in golden.phases:
            print(f"  {span.name:<12} {span.count:>4} writes")
        print(f"  mosaic stats : min={golden.analysis['min']:.4f} "
              f"(paper reports ~82.82), max={golden.analysis['max']:.2f}, "
              f"mean={golden.analysis['mean']:.2f}\n")


def per_stage_campaigns(app: MontageApplication) -> None:
    print(f"per-stage campaigns ({N_RUNS} runs per cell):")
    header = f"  {'':<4}" + "".join(f"{s:<14}" for s in STAGES)
    print(header)
    for fault_model in ("BF", "SW", "DW"):
        cells = []
        for stage in STAGES:
            config = CampaignConfig(fault_model=fault_model, n_runs=N_RUNS,
                                    seed=3, phase=stage)
            result = Campaign(app, config).run()
            from repro.core.outcomes import Outcome
            cells.append(f"sdc={100 * result.rate(Outcome.SDC):>4.0f}%")
        print(f"  {fault_model:<4}" + "".join(f"{c:<14}" for c in cells))
    print()


def black_stripe(app: MontageApplication) -> None:
    result = run_figure9(app)
    print(result.render())


if __name__ == "__main__":
    app = MontageApplication(seed=2021)
    fault_free(app)
    per_stage_campaigns(app)
    black_stripe(app)
