#!/usr/bin/env python
"""Montage under per-stage fault injection (the paper's MT1..MT4 study).

Shows (1) the fault-free pipeline and its mosaic statistics, (2) the
per-stage outcome grid under each fault model -- one declarative
:class:`~repro.StudySpec` whose 12 cells (4 stages x 3 models) share a
single fault-free profile/golden capture through the fused study engine
-- and (3) the Fig. 9 black-stripe artifact a dropped mAdd write
produces.
"""

from repro import FFISFileSystem, ModelSpec, StudySpec, TargetSpec, mount
from repro.apps.montage import STAGES, MontageApplication

N_RUNS = 50


def fault_free(app: MontageApplication) -> None:
    fs = FFISFileSystem()
    with mount(fs) as mp:
        golden = app.capture_golden(mp)
        print("fault-free pipeline:")
        for span in golden.phases:
            print(f"  {span.name:<12} {span.count:>4} writes")
        print(f"  mosaic stats : min={golden.analysis['min']:.4f} "
              f"(paper reports ~82.82), max={golden.analysis['max']:.2f}, "
              f"mean={golden.analysis['mean']:.2f}\n")


def stage_grid_spec(n_runs: int = N_RUNS) -> StudySpec:
    """The per-stage grid as data: stages x fault models, model-major
    like the paper's Fig. 7 ordering."""
    return StudySpec(
        name="montage-stages",
        targets=tuple(TargetSpec(app="montage", label=f"MT{i}", phase=stage)
                      for i, stage in enumerate(STAGES, start=1)),
        models=tuple(ModelSpec(model=fm) for fm in ("BF", "SW", "DW")),
        order="model", runs=n_runs, seed=3)


def per_stage_study(app: MontageApplication, n_runs: int = N_RUNS) -> None:
    from repro.study import Study

    spec = stage_grid_spec(n_runs)
    print(f"per-stage study ({n_runs} runs per cell, "
          f"{len(spec.cells())} cells fused):")
    results = Study(spec, apps={"montage": app}).run()
    print(results.render())
    print(results.footer() + "\n")


def black_stripe(app: MontageApplication) -> None:
    from repro.experiments import run_figure9

    result = run_figure9(app)
    print(result.render())


def main(n_runs: int = N_RUNS,
         app: MontageApplication = None) -> None:
    if app is None:
        app = MontageApplication(seed=2021)
    fault_free(app)
    per_stage_study(app, n_runs)
    black_stripe(app)


if __name__ == "__main__":
    main()
