#!/usr/bin/env python
"""Compressed checkpoints shift the storage-fault profile (Sec. V-A).

The paper notes the Nyx baryon-density field compresses well, which
"greatly raises the importance of metadata due to its increasing portion
in the whole file".  This example writes the same snapshot contiguous
and chunked+deflate, then shows the two consequences:

1. metadata becomes a several-times-larger share of the file (and of the
   write-level fault surface), and
2. bit flips inside compressed chunks break the deflate filter -- a
   loud, *detectable* failure -- where the same flip in raw data was a
   silent one-value change.
"""

from repro import Campaign, CampaignConfig, FFISFileSystem, mount
from repro.apps.nyx import FieldConfig, NyxApplication

FIELD = FieldConfig(shape=(64, 64, 64))
N_RUNS = 80


def file_layout(app: NyxApplication, label: str) -> None:
    fs = FFISFileSystem()
    with mount(fs) as mp:
        app.execute(mp)
        size = mp.stat(app.output_paths()[0]).size
    plan = app.last_write_result.plan
    fraction = plan.metadata_size / size
    print(f"{label:<12} file {size:>9} B   metadata {plan.metadata_size:>5} B "
          f"({100 * fraction:.2f}% of the file)")


def campaign(app: NyxApplication, label: str) -> None:
    result = Campaign(app, CampaignConfig(fault_model="BF", n_runs=N_RUNS,
                                          seed=31)).run()
    print(f"{label:<12} BF outcomes: {result.tally}")


if __name__ == "__main__":
    plain = NyxApplication(seed=2021, field_config=FIELD)
    packed = NyxApplication(seed=2021, field_config=FIELD,
                            chunks=(16, 64, 64), compression="deflate")

    print("== layout ==")
    file_layout(plain, "contiguous")
    file_layout(packed, "compressed")
    print("\n== bit-flip campaigns ==")
    campaign(plain, "contiguous")
    campaign(packed, "compressed")
    print("\nCompression converts silent single-value corruption into")
    print("decompression failures the application cannot miss.")
