"""Application-level tests: golden capture, phases, classification."""

import numpy as np
import pytest

from repro.apps.base import GoldenRecord, PhaseSpan
from repro.apps.montage import STAGES, MontageApplication, SkyConfig
from repro.apps.nyx import FieldConfig, NyxApplication
from repro.apps.qmcpack import (
    SDC_WINDOW,
    DmcParams,
    QmcpackApplication,
    VmcParams,
)
from repro.core.outcomes import Outcome
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem


@pytest.fixture(scope="module")
def small_qmc():
    return QmcpackApplication(
        seed=5,
        vmc_params=VmcParams(n_walkers=64, n_blocks=30, warmup_blocks=5),
        dmc_params=DmcParams(target_walkers=64, n_blocks=40, steps_per_block=6),
        equilibration=10)


@pytest.fixture(scope="module")
def small_montage():
    return MontageApplication(
        seed=5, sky_config=SkyConfig(canvas_shape=(64, 64),
                                     tile_shape=(40, 40), n_tiles=6))


def run_golden(app):
    fs = FFISFileSystem()
    with mount(fs) as mp:
        golden = app.capture_golden(mp)
    return fs, golden


class TestNyxApplication:
    def test_golden_is_benign_against_itself(self, tiny_nyx, tiny_nyx_golden):
        fs = FFISFileSystem()
        with mount(fs) as mp:
            tiny_nyx.execute(mp)
            outcome, detail = tiny_nyx.classify(tiny_nyx_golden, mp)
        assert outcome is Outcome.BENIGN, detail

    def test_runs_are_bit_reproducible(self, tiny_nyx):
        outputs = []
        for _ in range(2):
            fs = FFISFileSystem()
            with mount(fs) as mp:
                tiny_nyx.execute(mp)
                outputs.append(mp.read_file(tiny_nyx.output_paths()[0]))
        assert outputs[0] == outputs[1]

    def test_phase_recorded(self, tiny_nyx, tiny_nyx_golden):
        assert tiny_nyx_golden.phase_names() == ["checkpoint"]
        assert tiny_nyx_golden.phase("checkpoint").count == tiny_nyx_golden.total_writes

    def test_golden_has_halos(self, tiny_nyx, tiny_nyx_golden):
        assert tiny_nyx_golden.analysis["n_halos"] > 0

    def test_average_detector_upgrades_mean_shift(self, tiny_nyx_golden):
        """With the average detector, a zeroed stripe becomes DETECTED."""
        config = FieldConfig(shape=(16, 16, 16), n_halos=2,
                             halo_amplitude=(800.0, 1500.0),
                             halo_radius=(0.6, 0.8))
        detector_app = NyxApplication(seed=77, field_config=config, min_cells=3,
                                      use_average_detector=True)
        fs = FFISFileSystem()
        with mount(fs) as mp:
            detector_app.execute(mp)
            # Zero a stripe of raw data behind the application's back.
            start = detector_app.last_write_result.plan.datasets[0].data_address
            with mp.open(detector_app.output_paths()[0], "r+") as f:
                f.pwrite(b"\x00" * 2048, start)
            outcome, detail = detector_app.classify(tiny_nyx_golden, mp)
        assert outcome is Outcome.DETECTED
        assert "average-value" in detail


class TestQmcpackApplication:
    def test_golden_energy_in_window(self, small_qmc):
        _, golden = run_golden(small_qmc)
        lo, hi = SDC_WINDOW
        assert lo - 0.02 <= golden.analysis["energy"] <= hi + 0.02

    def test_phases(self, small_qmc):
        _, golden = run_golden(small_qmc)
        assert golden.phase_names() == ["vmc", "dmc"]
        assert golden.phase("vmc").count > 0
        assert golden.phase("dmc").count > 0

    def test_benign_against_itself(self, small_qmc):
        _, golden = run_golden(small_qmc)
        fs = FFISFileSystem()
        with mount(fs) as mp:
            small_qmc.execute(mp)
            outcome, detail = small_qmc.classify(golden, mp)
        assert outcome is Outcome.BENIGN, detail

    def test_missing_s001_is_crash(self, small_qmc):
        _, golden = run_golden(small_qmc)
        fs = FFISFileSystem()
        with mount(fs) as mp:
            small_qmc.execute(mp)
            mp.remove("/qmc/He.s001.scalar.dat")
            outcome, _ = small_qmc.classify(golden, mp)
        assert outcome is Outcome.CRASH

    def test_corrupted_walker_file_propagates(self, small_qmc):
        """Flipping one walker byte must change the DMC output file --
        the restart-read propagation channel."""
        from repro.fusefs.interposer import PrimitiveCall

        _, golden = run_golden(small_qmc)
        fs = FFISFileSystem()

        def flip_config_data(call: PrimitiveCall):
            # The walker file raw-data write is 64*2*3*8 = 3072 bytes.
            if call.primitive == "ffis_write" and call.args["size"] == 3072:
                buf = bytearray(call.args["buf"])
                buf[100] ^= 0x10
                call.args["buf"] = bytes(buf)
            return None

        fs.interposer.add_hook("ffis_write", flip_config_data)
        with mount(fs) as mp:
            small_qmc.execute(mp)
            faulty = mp.read_file("/qmc/He.s001.scalar.dat")
        assert faulty != golden.analysis["s001_text"]


class TestMontageApplication:
    def test_golden_min_near_paper(self, small_montage):
        _, golden = run_golden(small_montage)
        assert abs(golden.analysis["min"] - 82.82) < 1.0

    def test_phases_are_the_paper_stages(self, small_montage):
        _, golden = run_golden(small_montage)
        assert golden.phase_names() == ["stage_raw"] + list(STAGES)
        for stage in STAGES:
            assert golden.phase(stage).count > 0

    def test_benign_against_itself(self, small_montage):
        _, golden = run_golden(small_montage)
        fs = FFISFileSystem()
        with mount(fs) as mp:
            small_montage.execute(mp)
            outcome, detail = small_montage.classify(golden, mp)
        assert outcome is Outcome.BENIGN, detail

    def test_missing_mosaic_is_crash(self, small_montage):
        _, golden = run_golden(small_montage)
        fs = FFISFileSystem()
        with mount(fs) as mp:
            small_montage.execute(mp)
            mp.remove("/montage/out/m101_mosaic.jpg")
            outcome, _ = small_montage.classify(golden, mp)
        assert outcome is Outcome.CRASH

    def test_background_planes_are_removed(self, small_montage):
        """The mosaic matches the true sky far better than any raw tile
        does -- mBgExec earned its keep."""
        from repro.apps.montage.add import COVERAGE_MARGIN
        from repro.apps.montage.image import generate_sky
        from repro.mfits.io import read_fits

        fs = FFISFileSystem()
        with mount(fs) as mp:
            small_montage.execute(mp)
            mosaic = read_fits(mp, "/montage/out/m101_mosaic.fits").data
        sky = generate_sky(small_montage.sky_config, small_montage.seed)
        m = COVERAGE_MARGIN
        truth = sky[m:-m, m:-m]
        residual = np.abs(mosaic - truth)
        # Median residual well under the raw background-plane magnitude.
        assert np.median(residual) < 0.25


class TestPhaseMachinery:
    def test_phase_outside_run_rejected(self, tiny_nyx):
        with pytest.raises(RuntimeError):
            with tiny_nyx.phase("nope"):
                pass

    def test_golden_record_lookup(self):
        golden = GoldenRecord(phases=[PhaseSpan("a", 0, 5)])
        assert golden.phase("a").count == 5
        with pytest.raises(KeyError):
            golden.phase("b")
