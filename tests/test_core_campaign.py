"""Tests for the campaign machinery: generator, profiler, injector, runner."""

import pytest

from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.fault_models import BitFlipFault, DroppedWriteFault
from repro.core.generator import FaultGenerator
from repro.core.injector import FaultInjector, InjectionHook
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.core.profiler import IOProfiler
from repro.core.signature import FaultSignature
from repro.errors import ConfigError, FFISError
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.util.rngstream import RngStream


class TestConfigAndGenerator:
    def test_signature_from_config(self):
        config = CampaignConfig(fault_model="SW",
                                model_params={"fraction": 3 / 8})
        signature = FaultGenerator().generate(config)
        assert signature.model.name == "SW"
        assert signature.primitive == "ffis_write"
        assert "3/8" in signature.feature

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ConfigError):
            FaultSignature(model=BitFlipFault(), primitive="ffis_teleport")

    def test_bad_runs_rejected(self):
        with pytest.raises(ConfigError):
            CampaignConfig(n_runs=0)

    def test_from_dict_validates_keys(self):
        with pytest.raises(ConfigError):
            CampaignConfig.from_dict({"fault_model": "BF", "typo": 1})
        config = CampaignConfig.from_dict({"fault_model": "DW", "n_runs": 5})
        assert config.n_runs == 5


class TestProfiler:
    def test_counts_writes(self, tiny_nyx):
        signature = FaultSignature(model=BitFlipFault())
        profile = IOProfiler().profile(tiny_nyx, signature)
        # 16^3 float32 = 16 KiB of data in 4 KiB blocks + metadata + flags.
        assert profile.total_count == 6
        assert profile.bytes_written > 16384

    def test_phase_windows(self, tiny_nyx):
        signature = FaultSignature(model=BitFlipFault())
        profile = IOProfiler().profile(tiny_nyx, signature)
        window = profile.window("checkpoint")
        assert window == range(0, profile.total_count)
        assert profile.window(None) == range(profile.total_count)

    def test_unknown_phase_rejected(self, tiny_nyx):
        signature = FaultSignature(model=BitFlipFault())
        profile = IOProfiler().profile(tiny_nyx, signature)
        with pytest.raises(FFISError):
            profile.window("warp-drive")

    def test_never_executed_primitive_rejected(self, tiny_nyx):
        signature = FaultSignature(model=BitFlipFault(), primitive="ffis_chmod")
        with pytest.raises(FFISError):
            IOProfiler().profile(tiny_nyx, signature)


class TestInjector:
    def test_fires_exactly_once_at_instance(self):
        fs = FFISFileSystem()
        signature = FaultSignature(model=DroppedWriteFault())
        hook = FaultInjector(signature).arm(fs, 1, RngStream(0).generator())
        with mount(fs) as mp:
            mp.write_file("/f", b"A" * 12, block_size=4)
            content = mp.read_file("/f")
        assert hook.fired
        assert content == b"AAAA\x00\x00\x00\x00AAAA"

    def test_does_not_fire_for_other_instances(self):
        fs = FFISFileSystem()
        signature = FaultSignature(model=DroppedWriteFault())
        hook = FaultInjector(signature).arm(fs, 99, RngStream(0).generator())
        with mount(fs) as mp:
            mp.write_file("/f", b"A" * 12, block_size=4)
            content = mp.read_file("/f")
        assert not hook.fired
        assert content == b"A" * 12

    def test_negative_instance_rejected(self):
        with pytest.raises(FFISError):
            InjectionHook(FaultSignature(model=BitFlipFault()), -1,
                          RngStream(0).generator())


class TestCampaign:
    def test_golden_only_fault_free(self, tiny_nyx):
        campaign = Campaign(tiny_nyx, CampaignConfig(fault_model="BF", n_runs=1))
        golden = campaign.capture_golden()
        assert golden.analysis["n_halos"] > 0

    def test_run_produces_records(self, tiny_nyx):
        config = CampaignConfig(fault_model="DW", n_runs=8, seed=3)
        result = Campaign(tiny_nyx, config).run()
        assert len(result.records) == 8
        assert result.tally.total == 8
        for record in result.records:
            assert isinstance(record.outcome, Outcome)
            assert 0 <= record.target_instance < result.profile.total_count

    def test_campaign_is_replayable(self, tiny_nyx):
        config = CampaignConfig(fault_model="BF", n_runs=6, seed=11)
        a = Campaign(tiny_nyx, config).run()
        b = Campaign(tiny_nyx, config).run()
        assert [r.outcome for r in a.records] == [r.outcome for r in b.records]
        assert [r.target_instance for r in a.records] == \
            [r.target_instance for r in b.records]

    def test_seed_changes_instances(self, tiny_nyx):
        a = Campaign(tiny_nyx, CampaignConfig(fault_model="BF", n_runs=6, seed=1)).run()
        b = Campaign(tiny_nyx, CampaignConfig(fault_model="BF", n_runs=6, seed=2)).run()
        assert [r.target_instance for r in a.records] != \
            [r.target_instance for r in b.records]

    def test_crash_classification(self, tiny_nyx):
        """Dropping the metadata write (penultimate) must crash the reader."""
        campaign = Campaign(tiny_nyx, CampaignConfig(fault_model="DW", n_runs=1))
        golden = campaign.capture_golden()
        metadata_instance = campaign.profile().total_count - 2
        record = campaign.run_once(metadata_instance, run_rng_seed=1,
                                   run_index=0, golden=golden)
        assert record.outcome is Outcome.CRASH

    def test_progress_callback(self, tiny_nyx):
        seen = []
        config = CampaignConfig(fault_model="DW", n_runs=3, seed=3)
        Campaign(tiny_nyx, config).run(progress=lambda i, n: seen.append((i, n)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_summary_text(self, tiny_nyx):
        config = CampaignConfig(fault_model="DW", n_runs=2, seed=3)
        result = Campaign(tiny_nyx, config).run()
        assert "nyx/DW" in result.summary()


class TestOutcomeTally:
    def test_from_records(self):
        records = [RunRecord(0, Outcome.BENIGN), RunRecord(1, Outcome.SDC),
                   RunRecord(2, Outcome.SDC)]
        tally = OutcomeTally.from_records(records)
        assert tally.counts[Outcome.SDC] == 2
        assert tally.rate(Outcome.SDC) == pytest.approx(2 / 3)
        assert tally.total == 3

    def test_empty_tally(self):
        tally = OutcomeTally()
        assert tally.total == 0
        assert tally.rate(Outcome.SDC) == 0.0
        assert str(tally) == "empty"
