"""Tests for the CLI and the system-level rate projection."""

import io

import pytest

from repro.analysis.projection import (
    FIELD_STUDY_UBER_RANGE,
    JEDEC_ENTERPRISE_UBER,
    DeviceModel,
    effective_uber_budget,
    project_run,
    system_sdc_rate,
)
from repro.cli import main
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.outcomes import Outcome


@pytest.fixture(scope="module")
def dw_result(tiny_nyx_module):
    config = CampaignConfig(fault_model="DW", n_runs=12, seed=2)
    return Campaign(tiny_nyx_module, config).run()


@pytest.fixture(scope="module")
def tiny_nyx_module():
    from repro.apps.nyx import FieldConfig, NyxApplication
    config = FieldConfig(shape=(16, 16, 16), n_halos=2,
                         halo_amplitude=(800.0, 1500.0),
                         halo_radius=(0.6, 0.8))
    return NyxApplication(seed=77, field_config=config, min_cells=3)


class TestDeviceModel:
    def test_fault_probability_scales_with_bytes(self):
        device = DeviceModel(uber=1e-9)
        small = device.fault_probability(1_000)
        large = device.fault_probability(1_000_000)
        assert 0 < small < large < 1

    def test_tiny_uber_linearizes(self):
        device = DeviceModel(uber=1e-15)
        p = device.fault_probability(10_000)
        assert p == pytest.approx(8e4 * 1e-15, rel=1e-6)

    def test_zero_bytes(self):
        assert DeviceModel(uber=1e-9).fault_probability(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceModel(uber=1.5)
        with pytest.raises(ValueError):
            DeviceModel(uber=1e-9).fault_probability(-1)

    def test_paper_constants(self):
        lo, hi = FIELD_STUDY_UBER_RANGE
        assert lo < hi
        assert JEDEC_ENTERPRISE_UBER < lo


class TestProjection:
    def test_project_run_composes_probabilities(self, dw_result):
        device = DeviceModel(uber=1e-9)
        projection = project_run(dw_result, device)
        p_sdc = projection.probability(Outcome.SDC)
        assert p_sdc == pytest.approx(
            projection.fault_probability * dw_result.rate(Outcome.SDC))
        assert 0 < p_sdc < projection.fault_probability + 1e-12

    def test_expected_events(self, dw_result):
        projection = project_run(dw_result, DeviceModel(uber=1e-9))
        events = projection.expected_events(1e6)
        assert events[Outcome.SDC] == pytest.approx(
            projection.probability(Outcome.SDC) * 1e6)

    def test_runs_per_sdc(self, dw_result):
        projection = project_run(dw_result, DeviceModel(uber=1e-9))
        assert projection.runs_per_sdc() == pytest.approx(
            1.0 / projection.probability(Outcome.SDC))

    def test_system_rate_scales_with_nodes(self, dw_result):
        projection = project_run(dw_result, DeviceModel(uber=1e-9))
        one = system_sdc_rate(projection, runs_per_day=24, nodes=1)
        many = system_sdc_rate(projection, runs_per_day=24, nodes=1000)
        assert many == pytest.approx(1000 * one)

    def test_uber_budget_inverts_projection(self, dw_result):
        """The budget UBER reproduces the target P(SDC) when fed back."""
        target = 1e-8
        budget = effective_uber_budget(dw_result, target)
        projection = project_run(dw_result, DeviceModel(uber=budget))
        assert projection.probability(Outcome.SDC) == pytest.approx(
            target, rel=1e-6)

    def test_resilient_app_gets_bigger_budget(self, dw_result, tiny_nyx_module):
        """Contribution (i): masking capability buys device headroom.
        BF (mostly benign) tolerates a worse device than DW (all SDC)."""
        bf_result = Campaign(tiny_nyx_module,
                             CampaignConfig(fault_model="BF", n_runs=12,
                                            seed=2)).run()
        if bf_result.rate(Outcome.SDC) == 0:
            assert effective_uber_budget(bf_result, 1e-8) == 1.0
        else:
            assert effective_uber_budget(bf_result, 1e-8) > \
                effective_uber_budget(dw_result, 1e-8)

    def test_validation(self, dw_result):
        with pytest.raises(ValueError):
            effective_uber_budget(dw_result, 0.0)
        projection = project_run(dw_result, DeviceModel(uber=1e-9))
        with pytest.raises(ValueError):
            system_sdc_rate(projection, runs_per_day=-1)


class TestCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_experiments_lists_all(self):
        code, text = self.run_cli("experiments")
        assert code == 0
        for exp_id in ("table1", "table3", "figure7", "figure9"):
            assert exp_id in text

    def test_run_table1(self):
        code, text = self.run_cli("run", "table1")
        assert code == 0
        assert "Bitflip" in text

    def test_campaign_command(self):
        code, text = self.run_cli("campaign", "--app", "nyx", "--model", "DW",
                                  "--runs", "5", "--seed", "9")
        assert code == 0
        assert "nyx/DW" in text and "sdc" in text

    def test_project_command(self):
        code, text = self.run_cli("project", "--app", "nyx", "--model", "DW",
                                  "--runs", "5", "--uber", "1e-9",
                                  "--nodes", "100", "--runs-per-day", "10")
        assert code == 0
        assert "P(SDC per run)" in text
        assert "expected SDCs per day" in text

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            self.run_cli("run", "table99")
