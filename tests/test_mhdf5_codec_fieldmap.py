"""Tests for the binary codec and the byte-range field map."""

import pytest

from repro.errors import FormatError
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass, FieldMap, FieldSpan


class TestFieldWriter:
    def test_tracks_spans_with_offsets(self):
        w = FieldWriter(base_offset=100, container="c")
        w.put_uint(7, 2, "a", FieldClass.NUMERIC)
        w.put_bytes(b"xyz", "b", FieldClass.STRUCTURAL)
        assert w.getvalue() == b"\x07\x00xyz"
        assert [(s.start, s.end, s.name) for s in w.spans] == [
            (100, 102, "a"), (102, 105, "b")]

    def test_pad_to(self):
        w = FieldWriter()
        w.put_bytes(b"ab", "x", FieldClass.NUMERIC)
        w.pad_to(8)
        assert len(w.getvalue()) == 8
        with pytest.raises(ValueError):
            w.pad_to(4)

    def test_qualified_names(self):
        w = FieldWriter(container="objHeader.dataType")
        w.put_uint(0, 1, "Exponent Bias", FieldClass.NUMERIC)
        assert w.spans[0].qualified_name == "objHeader.dataType.Exponent Bias"


class TestFieldReader:
    def test_sequential_reads(self):
        r = FieldReader(b"\x01\x02\x03\x04")
        assert r.take_uint(2) == 0x0201
        assert r.take(2) == b"\x03\x04"

    def test_truncation_raises_format_error(self):
        r = FieldReader(b"\x01")
        with pytest.raises(FormatError):
            r.take(2, "field")

    def test_expect_mismatch(self):
        r = FieldReader(b"BAD!")
        with pytest.raises(FormatError, match="signature"):
            r.expect(b"GOOD", "signature")

    def test_expect_uint(self):
        r = FieldReader(b"\x05")
        with pytest.raises(FormatError):
            r.expect_uint(6, 1, "version")

    def test_window_bounds(self):
        r = FieldReader(b"abcdef", offset=1, end=3)
        assert r.take(2) == b"bc"
        with pytest.raises(FormatError):
            r.take(1)


class TestFieldMap:
    def make(self):
        return FieldMap([
            FieldSpan(0, 4, "sig", FieldClass.STRUCTURAL, "sb"),
            FieldSpan(4, 8, "pad", FieldClass.RESERVED, "sb"),
            FieldSpan(10, 14, "bias", FieldClass.NUMERIC, "dt"),
        ])

    def test_field_at(self):
        fm = self.make()
        assert fm.field_at(0).name == "sig"
        assert fm.field_at(3).name == "sig"
        assert fm.field_at(4).name == "pad"
        assert fm.field_at(9) is None
        assert fm.field_at(13).name == "bias"
        assert fm.field_at(14) is None

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            FieldMap([FieldSpan(0, 4, "a", FieldClass.NUMERIC),
                      FieldSpan(2, 6, "b", FieldClass.NUMERIC)])

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            FieldSpan(4, 4, "empty", FieldClass.NUMERIC)

    def test_bytes_by_class(self):
        totals = self.make().bytes_by_class()
        assert totals[FieldClass.STRUCTURAL] == 4
        assert totals[FieldClass.RESERVED] == 4
        assert totals[FieldClass.NUMERIC] == 4

    def test_container_fraction(self):
        fm = self.make()
        assert fm.container_fraction("sb") == pytest.approx(8 / 12)

    def test_extent(self):
        assert self.make().extent == 14
