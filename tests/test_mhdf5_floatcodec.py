"""Unit and property tests for the generic float codec.

This module is the mechanism behind the paper's Table IV, so it gets the
heaviest property coverage: IEEE round-trips, equivalence with numpy's
native encodings, and the documented corruption semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.mhdf5.datatype import ByteOrder, MantissaNorm, ieee_f32le, ieee_f64le
from repro.mhdf5.floatcodec import decode_floats, encode_floats

finite_f32 = st.floats(width=32, allow_nan=False, allow_infinity=False,
                       allow_subnormal=True)


class TestIeeeEquivalence:
    def test_f32_decode_matches_numpy(self, rng):
        values = rng.lognormal(0, 1, 256).astype(np.float32)
        decoded = decode_floats(values.tobytes(), ieee_f32le(), 256)
        assert np.array_equal(decoded, values.astype(np.float64))

    def test_f64_decode_matches_numpy(self, rng):
        values = rng.normal(0, 100, 256)
        decoded = decode_floats(values.tobytes(), ieee_f64le(), 256)
        assert np.array_equal(decoded, values)

    def test_f32_encode_matches_numpy(self, rng):
        values = rng.lognormal(0, 1, 256).astype(np.float32).astype(np.float64)
        assert encode_floats(values, ieee_f32le()) == values.astype(np.float32).tobytes()

    def test_f64_encode_matches_numpy(self, rng):
        values = rng.normal(0, 1, 64)
        assert encode_floats(values, ieee_f64le()) == values.tobytes()

    @given(st.lists(finite_f32, min_size=1, max_size=32))
    @settings(max_examples=200, deadline=None)
    def test_f32_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.float32).astype(np.float64)
        raw = encode_floats(arr, ieee_f32le())
        assert raw == arr.astype(np.float32).tobytes()
        decoded = decode_floats(raw, ieee_f32le(), len(values))
        assert np.array_equal(decoded, arr)

    def test_special_values_decode(self):
        specials = np.array([np.inf, -np.inf, np.nan, 0.0, -0.0], dtype=np.float32)
        decoded = decode_floats(specials.tobytes(), ieee_f32le(), 5)
        assert np.isposinf(decoded[0])
        assert np.isneginf(decoded[1])
        assert np.isnan(decoded[2])
        assert decoded[3] == 0.0 and decoded[4] == 0.0

    def test_subnormals_decode(self):
        tiny = np.array([1e-41, -3e-42], dtype=np.float32)
        decoded = decode_floats(tiny.tobytes(), ieee_f32le(), 2)
        assert np.array_equal(decoded, tiny.astype(np.float64))

    def test_big_endian_roundtrip(self, rng):
        values = rng.normal(0, 1, 32).astype(np.float32)
        dt = ieee_f32le().with_fields(byte_order=ByteOrder.BIG)
        raw = encode_floats(values.astype(np.float64), dt)
        assert raw == values.astype(">f4").tobytes()
        assert np.array_equal(decode_floats(raw, dt, 32),
                              values.astype(np.float64))


class TestCorruptionSemantics:
    """The documented Table IV mechanisms."""

    def setup_method(self):
        rng = np.random.default_rng(3)
        self.values = rng.lognormal(0, 0.5, 512).astype(np.float32)
        self.raw = self.values.tobytes()

    def test_exponent_bias_scales_by_power_of_two(self):
        for delta in (1, 4, 12):
            dt = ieee_f32le().with_fields(exponent_bias=127 - delta)
            decoded = decode_floats(self.raw, dt, 512)
            ratio = decoded / self.values.astype(np.float64)
            assert np.allclose(ratio, 2.0 ** delta)

    def test_norm_none_drops_implied_bit(self):
        dt = ieee_f32le().with_fields(mantissa_norm_raw=MantissaNorm.NONE.value)
        decoded = decode_floats(self.raw, dt, 512)
        golden = decode_floats(self.raw, ieee_f32le(), 512)
        # value = (1 + f) * 2^e  becomes  f * 2^e: strictly smaller.
        assert np.all(decoded <= golden)
        assert decoded.mean() < 0.8 * golden.mean()

    def test_mantissa_size_shift_gives_mild_distortion(self):
        dt = ieee_f32le().with_fields(mantissa_size=22)
        decoded = decode_floats(self.raw, dt, 512)
        mean_ratio = decoded.mean() / self.values.mean(dtype=np.float64)
        assert 1.0 < mean_ratio < 1.6   # the paper's 1.04..1.55 band

    def test_short_raw_zero_fills(self):
        decoded = decode_floats(self.raw[:100], ieee_f32le(), 512)
        assert np.array_equal(decoded[:25],
                              self.values[:25].astype(np.float64))
        assert np.all(decoded[25:] == 0.0)

    def test_out_of_range_geometry_rejected(self):
        with pytest.raises(FormatError):
            decode_floats(self.raw, ieee_f32le().with_fields(exponent_location=60), 8)
        with pytest.raises(FormatError):
            decode_floats(self.raw, ieee_f32le().with_fields(sign_location=32), 8)
        with pytest.raises(FormatError):
            decode_floats(self.raw, ieee_f32le().with_fields(mantissa_size=40), 8)

    def test_bad_element_size_rejected(self):
        with pytest.raises(FormatError):
            decode_floats(self.raw, ieee_f32le().with_fields(size=9), 8)


class TestEncodeValidation:
    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            encode_floats(np.array([np.nan]), ieee_f32le())

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_floats(np.array([1e39]), ieee_f32le())

    def test_non_implied_norm_rejected(self):
        dt = ieee_f32le().with_fields(mantissa_norm_raw=MantissaNorm.NONE.value)
        with pytest.raises(ValueError):
            encode_floats(np.array([1.0]), dt)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            decode_floats(b"", ieee_f32le(), -1)
        assert len(decode_floats(b"", ieee_f32le(), 0)) == 0
