"""The bench-regression gate's decision table.

The subtle case is the *silently-skipped* gate: a baseline recorded on
one core exempts the 1.5x parallel floor, which is correct on a
single-core runner and a standing hole on a multi-core one.  CI
re-records the engine_parallel bench on its own runner right before
gating; this suite pins the script-side contract that a multi-core
runner refuses to gate against a single-core baseline.
"""

import importlib.util
import os

_SCRIPT = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                       "scripts", "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def baseline(parallel_cores=4, parallel_speedup=2.1, replay_speedup=2.5,
             identical=True):
    return {
        "engine_parallel": {"cores": parallel_cores,
                            "speedup": parallel_speedup,
                            "records_identical": identical},
        "prefix_replay_figure7": {"speedup": replay_speedup,
                                  "records_identical": True},
    }


class TestBenchGate:
    def test_healthy_baseline_passes(self):
        assert gate.check(baseline(), runner_cores=4) == []

    def test_parallel_floor_enforced_on_multicore_baseline(self):
        failures = gate.check(baseline(parallel_speedup=1.1),
                              runner_cores=4)
        assert any("engine_parallel.speedup 1.1" in f for f in failures)

    def test_single_core_baseline_skips_only_on_single_core_runner(
            self, capsys):
        assert gate.check(baseline(parallel_cores=1,
                                   parallel_speedup=0.7),
                          runner_cores=1) == []
        assert "not gated" in capsys.readouterr().out

    def test_single_core_baseline_fails_on_multicore_runner(self):
        failures = gate.check(baseline(parallel_cores=1,
                                       parallel_speedup=0.7),
                              runner_cores=4)
        assert len(failures) == 1
        assert "re-record" in failures[0]
        assert "silently skipped" in failures[0]

    def test_replay_floor_is_unconditional(self):
        failures = gate.check(baseline(replay_speedup=1.2), runner_cores=1)
        assert any("prefix_replay_figure7" in f for f in failures)

    def test_nonidentical_records_fail_regardless_of_speed(self):
        failures = gate.check(baseline(identical=False), runner_cores=4)
        assert any("records_identical" in f for f in failures)

    def test_missing_entries_fail(self):
        failures = gate.check({}, runner_cores=1)
        assert any("engine_parallel" in f for f in failures)
        assert any("prefix_replay_figure7" in f for f in failures)
