"""The whole-program analysis substrate: call graph + effect fixpoint.

Pins the resolution cases the R007-R010 rules lean on -- decorated
defs, ``functools.partial`` references, bound methods through ``self``,
executor fork edges (``submit``/``map``/``initializer``) -- and the
termination property: effect propagation over a mutual-recursion cycle
reaches a fixpoint instead of looping.
"""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.lint.callgraph import CallGraph, build_project
from repro.devtools.lint.dataflow import propagate, summarize
from repro.devtools.lint.names import import_map
from repro.devtools.lint.registry import FileContext


def make_file(relpath, source):
    source = textwrap.dedent(source)
    tree = ast.parse(source)
    return relpath, FileContext(relpath, source, tree, import_map(tree))


def graph_of(*files):
    project = build_project([make_file(rel, src) for rel, src in files])
    return project, CallGraph.build(project)


MOD = "src/repro/core/engine/mod.py"


class TestCallResolution:
    def test_module_level_call_edge(self):
        _, graph = graph_of((MOD, """
            def helper():
                return 1

            def driver():
                return helper()
        """))
        assert "repro.core.engine.mod.helper" in \
            graph.callees("repro.core.engine.mod.driver")

    def test_decorated_def_still_resolves(self):
        _, graph = graph_of((MOD, """
            import functools

            def wrap(fn):
                @functools.wraps(fn)
                def inner(*a):
                    return fn(*a)
                return inner

            @wrap
            def task():
                return 1

            def driver():
                return task()
        """))
        assert "repro.core.engine.mod.task" in \
            graph.callees("repro.core.engine.mod.driver")

    def test_functools_partial_references_its_target(self):
        _, graph = graph_of((MOD, """
            import functools

            def task(x, y):
                return x + y

            def driver():
                return functools.partial(task, 1)
        """))
        assert "repro.core.engine.mod.task" in \
            graph.callees("repro.core.engine.mod.driver")

    def test_bound_method_through_self(self):
        _, graph = graph_of((MOD, """
            class Engine:
                def step(self):
                    return self.emit_one()

                def emit_one(self):
                    return 1
        """))
        assert "repro.core.engine.mod.Engine.emit_one" in \
            graph.callees("repro.core.engine.mod.Engine.step")

    def test_method_through_visible_construction(self):
        _, graph = graph_of((MOD, """
            class Queue:
                def claim(self):
                    return 1

            def driver():
                queue = Queue()
                return queue.claim()
        """))
        assert "repro.core.engine.mod.Queue.claim" in \
            graph.callees("repro.core.engine.mod.driver")

    def test_method_through_parameter_annotation(self):
        _, graph = graph_of((MOD, """
            class Queue:
                def claim(self):
                    return 1

            def driver(queue: Queue):
                return queue.claim()
        """))
        assert "repro.core.engine.mod.Queue.claim" in \
            graph.callees("repro.core.engine.mod.driver")

    def test_cross_module_call_through_import(self):
        _, graph = graph_of(
            ("src/repro/core/engine/util.py", """
                def helper():
                    return 1
            """),
            (MOD, """
                from repro.core.engine.util import helper

                def driver():
                    return helper()
            """))
        assert "repro.core.engine.util.helper" in \
            graph.callees("repro.core.engine.mod.driver")

    def test_unresolvable_calls_are_dropped_not_guessed(self):
        _, graph = graph_of((MOD, """
            import os

            def driver(thing):
                os.getpid()
                return thing.spin()
        """))
        assert graph.callees("repro.core.engine.mod.driver") == set()


class TestForkEdges:
    def test_executor_submit_marks_a_fork_entry(self):
        _, graph = graph_of((MOD, """
            def task(x):
                return x

            def driver(executor, items):
                return [executor.submit(task, x) for x in items]
        """))
        assert "repro.core.engine.mod.task" in graph.fork_entries

    def test_pool_map_marks_a_fork_entry(self):
        _, graph = graph_of((MOD, """
            def task(x):
                return x

            def driver(pool, items):
                return pool.map(task, items)
        """))
        assert "repro.core.engine.mod.task" in graph.fork_entries

    def test_initializer_kwarg_marks_a_fork_entry(self):
        _, graph = graph_of((MOD, """
            from concurrent.futures import ProcessPoolExecutor

            def _init():
                pass

            def driver():
                return ProcessPoolExecutor(initializer=_init)
        """))
        assert "repro.core.engine.mod._init" in graph.fork_entries

    def test_process_target_marks_a_fork_entry(self):
        _, graph = graph_of((MOD, """
            import multiprocessing

            def entry():
                pass

            def driver():
                return multiprocessing.Process(target=entry)
        """))
        assert "repro.core.engine.mod.entry" in graph.fork_entries

    def test_plain_call_is_not_a_fork_entry(self):
        _, graph = graph_of((MOD, """
            def task(x):
                return x

            def driver(items):
                return [task(x) for x in items]
        """))
        assert "repro.core.engine.mod.task" not in graph.fork_entries


class TestEffectFixpoint:
    def test_mutual_recursion_terminates_and_propagates(self):
        project, graph = graph_of((MOD, """
            def ping(sink, n):
                if n:
                    return pong(sink, n - 1)
                sink.emit(n)

            def pong(sink, n):
                return ping(sink, n)

            def driver(sink):
                return pong(sink, 3)
        """))
        summaries = propagate(project, graph, summarize(project))
        # The emit fact crossed the ping<->pong cycle to every caller:
        # the fixpoint converged rather than spinning.
        assert summaries["repro.core.engine.mod.ping"].emits_trans
        assert summaries["repro.core.engine.mod.pong"].emits_trans
        assert summaries["repro.core.engine.mod.driver"].emits_trans

    def test_effects_do_not_flow_backwards(self):
        project, graph = graph_of((MOD, """
            def quiet():
                return 1

            def noisy(sink):
                quiet()
                sink.emit(1)
        """))
        summaries = propagate(project, graph, summarize(project))
        assert not summaries["repro.core.engine.mod.quiet"].emits_trans
        assert summaries["repro.core.engine.mod.noisy"].emits_trans

    def test_param_flow_reaches_raw_writer_transitively(self):
        project, graph = graph_of((MOD, """
            def raw(path):
                with open(path, "w") as f:
                    f.write("x")

            def via(path):
                raw(path)

            def outer(path):
                via(path)
        """))
        summaries = propagate(project, graph, summarize(project))
        assert "path" in \
            summaries["repro.core.engine.mod.raw"].unatomic_write_params
        assert "path" in \
            summaries["repro.core.engine.mod.via"].unatomic_write_params
        assert "path" in \
            summaries["repro.core.engine.mod.outer"].unatomic_write_params
