"""The ``repro lint`` static-analysis framework.

Per rule: one seeded violation that must fire, one clean variant that
must not, and one pragma-suppressed variant proving the ``# repro:
allow[...]`` grammar silences exactly that hit.  Plus the framework
itself -- pragma parsing, scope configuration, JSON schema, exit
codes -- and the meta-test: ``repro lint`` exits 0 on the committed
tree without importing a single third-party package.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.devtools.lint import (
    PRAGMA_RULE_ID,
    RULES,
    LintConfig,
    Scope,
    lint_paths,
    parse_pragmas,
)
from repro.devtools.lint.cli import main as lint_main
from repro.devtools.lint.engine import PARSE_ERROR_ID

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Default fixture home: inside the engine scope, so every rule's
#: default path configuration applies.
ENGINE_REL = "src/repro/core/engine/fixture_mod.py"


def lint_source(tmp_path, source, relpath=ENGINE_REL, **config):
    """Lint one fixture file planted at *relpath* under a tmp root."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    report = lint_paths([str(tmp_path)], LintConfig(**config),
                        root=str(tmp_path))
    return report


def rule_hits(report, rule_id):
    return [v for v in report.violations if v.rule == rule_id]


# -- the rule pack: fires / clean / pragma-suppressed ---------------------------


class TestR001WallClock:
    VIOLATION = """
        import time

        def stamp(record):
            record["t"] = time.time()
    """

    def test_fires_on_wall_clock_read(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R001")
        assert "time.time" in hit.message
        assert hit.line == 5

    def test_fires_through_import_aliases(self, tmp_path):
        report = lint_source(tmp_path, """
            from datetime import datetime
            import uuid

            def stamp():
                return datetime.now(), uuid.uuid4()
        """)
        messages = [v.message for v in rule_hits(report, "R001")]
        assert len(messages) == 2
        assert any("datetime.datetime.now" in m for m in messages)
        assert any("uuid.uuid4" in m for m in messages)

    def test_clean_code_passes(self, tmp_path):
        report = lint_source(tmp_path, """
            def stamp(record, clock):
                record["t"] = clock.tick()
        """)
        assert not rule_hits(report, "R001")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            import time

            def elapsed(start):
                # repro: allow[R001] report-only duration, never recorded
                return time.perf_counter() - start
        """)
        assert not rule_hits(report, "R001")
        assert not rule_hits(report, PRAGMA_RULE_ID)

    def test_out_of_scope_file_is_ignored(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION,
                             relpath="tools/unrelated.py")
        assert not rule_hits(report, "R001")


class TestR002RngDiscipline:
    VIOLATION = """
        import numpy as np

        def pick(seed):
            return np.random.default_rng(seed).integers(8)
    """

    def test_fires_on_default_rng(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION,
                             relpath="src/repro/core/picker.py")
        (hit,) = rule_hits(report, "R002")
        assert "numpy.random.default_rng" in hit.message
        assert "RngStream" in hit.message

    def test_fires_on_randomstate_via_from_import(self, tmp_path):
        report = lint_source(tmp_path, """
            from numpy import random

            def legacy(seed):
                return random.RandomState(seed)
        """, relpath="src/repro/apps/toy/app.py")
        assert len(rule_hits(report, "R002")) == 1

    def test_annotation_is_not_a_construction(self, tmp_path):
        report = lint_source(tmp_path, """
            import numpy as np

            def consume(rng: np.random.Generator) -> float:
                return rng.random()
        """, relpath="src/repro/core/picker.py")
        assert not rule_hits(report, "R002")

    def test_rngstream_usage_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            from repro.util.rngstream import RngStream

            def pick(seed):
                return RngStream(seed, "pick").generator().integers(8)
        """, relpath="src/repro/core/picker.py")
        assert not rule_hits(report, "R002")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            import numpy as np

            def scratch(seed):
                # repro: allow[R002] throwaway diagnostics, not a record path
                return np.random.default_rng(seed)
        """, relpath="src/repro/core/picker.py")
        assert not rule_hits(report, "R002")


class TestR003UnorderedIteration:
    VIOLATION = """
        def emit(trace, sink):
            for ino in set(trace.observed) | set(trace.written):
                sink.write(ino)
    """

    def test_fires_on_set_union_iteration(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R003")
        assert "sorted()" in hit.message

    def test_fires_on_comprehension_over_set_literal(self, tmp_path):
        report = lint_source(tmp_path, """
            def emit(sink):
                return [sink.write(x) for x in {3, 1, 2}]
        """)
        assert len(rule_hits(report, "R003")) == 1

    def test_sorted_wrapper_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            def emit(trace, sink):
                for ino in sorted(set(trace.observed) | set(trace.written)):
                    sink.write(ino)
        """)
        assert not rule_hits(report, "R003")

    def test_list_iteration_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            def emit(trace, sink):
                for ino in trace.observed:
                    sink.write(ino)
        """)
        assert not rule_hits(report, "R003")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            def probe(inos):
                # repro: allow[R003] membership predicate, order never observed
                return all(x > 0 for x in set(inos))
        """)
        assert not rule_hits(report, "R003")


class TestR004ForkSafety:
    VIOLATION = """
        def fan_out(pool, items):
            return pool.map(lambda x: x + 1, items)
    """

    def test_fires_on_lambda_to_pool_map(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R004")
        assert "map()" in hit.message

    def test_fires_on_nested_def_submitted(self, tmp_path):
        report = lint_source(tmp_path, """
            def fan_out(executor, item):
                def work():
                    return item + 1
                return executor.submit(work)
        """)
        assert len(rule_hits(report, "R004")) == 1

    def test_fires_on_lambda_initializer(self, tmp_path):
        report = lint_source(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            def build(token):
                return ProcessPoolExecutor(
                    max_workers=2, initializer=lambda: print(token))
        """)
        assert len(rule_hits(report, "R004")) == 1

    def test_module_level_function_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            def work(x):
                return x + 1

            def fan_out(pool, items):
                return pool.map(work, items)
        """)
        assert not rule_hits(report, "R004")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            def fan_out(pool, items):
                # repro: allow[R004] thread pool, no pickling involved
                return pool.map(lambda x: x + 1, items)
        """)
        assert not rule_hits(report, "R004")


class TestR005ReplaySoundness:
    VIOLATION = """
        from repro.core.scenario import FaultScenario

        class DriveDropout(FaultScenario):
            def stamp(self):
                return "dropout"
    """

    def test_fires_on_scenario_without_constraint(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R005")
        assert "DriveDropout" in hit.message
        assert "replay_constraint" in hit.message

    def test_fires_on_app_without_steps(self, tmp_path):
        report = lint_source(tmp_path, """
            from repro.apps.base import HpcApplication

            class LegacyApp(HpcApplication):
                def run(self, mp):
                    pass
        """)
        (hit,) = rule_hits(report, "R005")
        assert "steps" in hit.message

    def test_complete_subclasses_are_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            from repro.apps.base import HpcApplication
            from repro.core.scenario import FaultScenario

            class GoodScenario(FaultScenario):
                def replay_constraint(self, signature, spec):
                    return None

            class GoodApp(HpcApplication):
                def steps(self):
                    return []
        """)
        assert not rule_hits(report, "R005")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            from repro.core.scenario import FaultScenario

            # repro: allow[R005] experimental scenario, replay semantics TBD
            class DriveDropout(FaultScenario):
                def stamp(self):
                    return "dropout"
        """)
        assert not rule_hits(report, "R005")


class TestR006FrozenSpecMutation:
    VIOLATION = """
        from repro.study import StudySpec

        def widen(spec):
            spec = StudySpec(name="x")
            spec.runs = 500
            return spec
    """

    def test_fires_on_attribute_assignment(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R006")
        assert "StudySpec" in hit.message

    def test_fires_on_annotated_parameter(self, tmp_path):
        report = lint_source(tmp_path, """
            def retarget(spec: RunSpec, instance):
                spec.target_instance = instance
        """)
        assert len(rule_hits(report, "R006")) == 1

    def test_fires_on_object_setattr_escape(self, tmp_path):
        report = lint_source(tmp_path, """
            def widen(cell: SweepCell):
                object.__setattr__(cell, "runs", 500)
        """)
        (hit,) = rule_hits(report, "R006")
        assert "SweepCell" in hit.message

    def test_replace_is_the_clean_spelling(self, tmp_path):
        report = lint_source(tmp_path, """
            import dataclasses

            def widen(spec: StudySpec):
                return dataclasses.replace(spec, runs=500)
        """)
        assert not rule_hits(report, "R006")

    def test_constructors_may_setattr(self, tmp_path):
        report = lint_source(tmp_path, """
            def __post_init__(self, spec: StudySpec):
                object.__setattr__(spec, "targets", ())
        """)
        assert not rule_hits(report, "R006")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            def widen(spec: StudySpec):
                # repro: allow[R006] migration shim for v1 checkpoints
                object.__setattr__(spec, "runs", 500)
        """)
        assert not rule_hits(report, "R006")


# -- the whole-program rule pack: R007-R010 -------------------------------------


class TestR007ForkEffect:
    VIOLATION = """
        from concurrent.futures import ProcessPoolExecutor

        CACHE = {}

        def work(x):
            CACHE[x] = x * 2
            return x

        def drive(pool: ProcessPoolExecutor, items):
            return list(pool.map(work, items))
    """

    def test_fires_on_global_write_reachable_from_fork(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R007")
        assert "CACHE" in hit.message
        assert "fork" in hit.message

    def test_fires_through_initializer_edge(self, tmp_path):
        report = lint_source(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            SEEN = []

            def _init():
                SEEN.append(1)

            def drive(items):
                with ProcessPoolExecutor(initializer=_init) as pool:
                    return list(pool.map(str, items))
        """)
        (hit,) = rule_hits(report, "R007")
        assert "SEEN" in hit.message

    def test_sanctioned_registry_write_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            _WORKER_STATE = None

            def _init(payload):
                global _WORKER_STATE
                _WORKER_STATE = payload

            def drive(pool: ProcessPoolExecutor, items):
                return list(pool.map(_init, items))
        """)
        assert not rule_hits(report, "R007")

    def test_unreachable_global_write_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            CACHE = {}

            def local_only(x):
                CACHE[x] = x
                return x
        """)
        assert not rule_hits(report, "R007")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            CACHE = {}

            def work(x):
                # repro: allow[R007] per-child memo, never read back
                CACHE[x] = x * 2
                return x

            def drive(pool: ProcessPoolExecutor, items):
                return list(pool.map(work, items))
        """)
        assert not rule_hits(report, "R007")
        assert not rule_hits(report, PRAGMA_RULE_ID)


class TestR008QueueProtocol:
    VIOLATION = """
        import os

        def post(root, payload):
            with open(os.path.join(root, "pending", "a.json"), "w") as f:
                f.write(payload)
    """

    def test_fires_on_inplace_state_write(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R008")
        assert "pending" in hit.message
        assert "tmp sibling" in hit.message

    def test_fires_across_a_helper_boundary(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def raw_write(path, payload):
                with open(path, "w") as f:
                    f.write(payload)

            def post(root, payload):
                raw_write(os.path.join(root, "pending", "a.json"), payload)
        """)
        (hit,) = rule_hits(report, "R008")
        assert "raw_write" in hit.message

    def test_fires_on_rename_into_done(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def settle(root, name):
                os.rename(os.path.join(root, "leased", name),
                          os.path.join(root, "done", name))
        """)
        (hit,) = rule_hits(report, "R008")
        assert "done/" in hit.message

    def test_fires_on_unguarded_pending_unlink(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def drop(root, name):
                os.unlink(os.path.join(root, "pending", name))
        """)
        (hit,) = rule_hits(report, "R008")
        assert "done/" in hit.message

    def test_atomic_publish_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def post(root, payload):
                path = os.path.join(root, "pending", "a.json")
                tmp = path + ".tmp"
                with open(tmp, "w") as f:
                    f.write(payload)
                os.replace(tmp, path)
        """)
        assert not rule_hits(report, "R008")

    def test_done_guarded_unlink_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def drop(root, name):
                if os.path.exists(os.path.join(root, "done", name)):
                    os.unlink(os.path.join(root, "pending", name))
        """)
        assert not rule_hits(report, "R008")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def post(root, payload):
                # repro: allow[R008] one-shot test fixture, no readers
                with open(os.path.join(root, "pending", "a.json"), "w") as f:
                    f.write(payload)
        """)
        assert not rule_hits(report, "R008")
        assert not rule_hits(report, PRAGMA_RULE_ID)

    # -- the injectable QueueIO seam: same protocol, new spelling -----------

    def test_seam_inplace_state_write_fires(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def post(io, root, payload):
                f = io.open_w(os.path.join(root, "pending", "a.json"))
                io.write(f, payload)
        """)
        (hit,) = rule_hits(report, "R008")
        assert "pending" in hit.message

    def test_seam_atomic_publish_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def post(io, root, payload):
                path = os.path.join(root, "pending", "a.json")
                tmp = path + ".tmp"
                f = io.open_w(tmp)
                io.write(f, payload)
                io.replace(tmp, path)
        """)
        assert not rule_hits(report, "R008")

    def test_seam_rename_out_of_done_fires(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def rollback(io, root, name):
                io.replace(os.path.join(root, "done", name),
                           os.path.join(root, "pending", name))
        """)
        (hit,) = rule_hits(report, "R008")
        assert "done/" in hit.message

    def test_seam_quarantine_rename_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def park(queue, name):
                queue.io.replace(
                    os.path.join(queue.leased_dir, name),
                    os.path.join(queue.quarantine_dir, name))
        """)
        assert not rule_hits(report, "R008")

    def test_seam_unguarded_unlink_fires(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def drop(io, root, name):
                io.unlink(os.path.join(root, "pending", name))
        """)
        (hit,) = rule_hits(report, "R008")
        assert "done/" in hit.message

    def test_seam_done_guarded_unlink_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def drop(io, root, name):
                if io.exists(os.path.join(root, "done", name)):
                    io.unlink(os.path.join(root, "pending", name))
        """)
        assert not rule_hits(report, "R008")

    def test_str_replace_does_not_alias_the_seam(self, tmp_path):
        report = lint_source(tmp_path, """
            def relabel(scenario, done_dir, pending_dir):
                return scenario.replace(done_dir, pending_dir)
        """)
        assert not rule_hits(report, "R008")


class TestR009ShutdownSoundness:
    VIOLATION = """
        from repro.core.engine.sink import JsonlSink

        def write_all(path, records):
            sink = JsonlSink(path)
            for record in records:
                sink.emit(record)
            sink.close()
    """

    def test_fires_on_release_outside_finally(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R009")
        assert "close()" in hit.message
        assert "finally" in hit.message

    def test_finally_dominated_release_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            from repro.core.engine.sink import JsonlSink

            def write_all(path, records):
                sink = JsonlSink(path)
                try:
                    for record in records:
                        sink.emit(record)
                finally:
                    sink.close()
        """)
        assert not rule_hits(report, "R009")

    def test_no_acquire_no_flag(self, tmp_path):
        report = lint_source(tmp_path, """
            def close_it(handle):
                handle.close()
        """)
        assert not rule_hits(report, "R009")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            from repro.core.engine.sink import JsonlSink

            def write_all(path, records):
                sink = JsonlSink(path)
                for record in records:
                    sink.emit(record)
                sink.close()  # repro: allow[R009] caller owns the raise path
        """)
        assert not rule_hits(report, "R009")
        assert not rule_hits(report, PRAGMA_RULE_ID)


class TestR010SinkPlanOrder:
    VIOLATION = """
        import os

        def merge(shards_dir, sink):
            for name in os.listdir(shards_dir):
                sink.emit(name)
    """

    def test_fires_on_emission_in_listdir_order(self, tmp_path):
        report = lint_source(tmp_path, self.VIOLATION)
        (hit,) = rule_hits(report, "R010")
        assert "hash-arbitrary" in hit.message

    def test_fires_through_an_emitting_callee(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def forward(sink, name):
                sink.emit_stamped(name, "c")

            def merge(shards_dir, sink):
                for name in os.listdir(shards_dir):
                    forward(sink, name)
        """)
        (hit,) = rule_hits(report, "R010")
        assert hit.rule == "R010"

    def test_sorted_enumeration_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def merge(shards_dir, sink):
                for name in sorted(os.listdir(shards_dir)):
                    sink.emit(name)
        """)
        assert not rule_hits(report, "R010")

    def test_nonemitting_listdir_loop_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def census(shards_dir):
                total = 0
                for _name in os.listdir(shards_dir):
                    total += 1
                return total
        """)
        assert not rule_hits(report, "R010")

    def test_fires_on_emission_in_seam_listdir_order(self, tmp_path):
        report = lint_source(tmp_path, """
            def merge(io, shards_dir, sink):
                for name in io.listdir(shards_dir):
                    sink.emit(name)
        """)
        (hit,) = rule_hits(report, "R010")
        assert "hash-arbitrary" in hit.message

    def test_sorted_seam_enumeration_is_clean(self, tmp_path):
        report = lint_source(tmp_path, """
            def merge(io, shards_dir, sink):
                for name in sorted(io.listdir(shards_dir)):
                    sink.emit(name)
        """)
        assert not rule_hits(report, "R010")

    def test_pragma_suppresses(self, tmp_path):
        report = lint_source(tmp_path, """
            import os

            def merge(shards_dir, sink):
                # repro: allow[R010] dedup pass; merge re-sorts downstream
                for name in os.listdir(shards_dir):
                    sink.emit(name)
        """)
        assert not rule_hits(report, "R010")
        assert not rule_hits(report, PRAGMA_RULE_ID)


# -- pragma grammar -------------------------------------------------------------


class TestPragmaGrammar:
    def test_trailing_pragma_targets_its_own_line(self):
        pragmas = parse_pragmas("f.py", "x = 1  # repro: allow[R001] why\n")
        (pragma,) = pragmas.pragmas
        assert pragma.target_line == 1
        assert pragma.rules == ("R001",)
        assert pragma.reason == "why"

    def test_own_line_pragma_targets_the_next_line(self):
        source = "# repro: allow[R003] sorted upstream\nfor x in s:\n    pass\n"
        pragmas = parse_pragmas("f.py", source)
        (pragma,) = pragmas.pragmas
        assert pragma.line == 1
        assert pragma.target_line == 2

    def test_multiple_rules_in_one_pragma(self):
        pragmas = parse_pragmas(
            "f.py", "x = f()  # repro: allow[R001, R004] shared reason\n")
        (pragma,) = pragmas.pragmas
        assert pragma.rules == ("R001", "R004")

    def test_missing_reason_is_a_violation(self):
        pragmas = parse_pragmas("f.py", "x = 1  # repro: allow[R001]\n")
        assert not pragmas.pragmas
        (problem,) = pragmas.problems
        assert problem.rule == PRAGMA_RULE_ID
        assert "reason" in problem.message

    def test_unparsable_pragma_is_a_violation(self):
        pragmas = parse_pragmas("f.py", "x = 1  # repro: alow[R001] typo\n")
        (problem,) = pragmas.problems
        assert "unparsable" in problem.message

    def test_pragma_inside_a_string_is_data(self):
        pragmas = parse_pragmas(
            "f.py", 'x = "# repro: allow[R001] not a pragma"\n')
        assert not pragmas.pragmas
        assert not pragmas.problems

    def test_unknown_rule_in_pragma_is_flagged(self, tmp_path):
        report = lint_source(tmp_path, """
            x = 1  # repro: allow[R999] no such rule
        """)
        assert any("unknown rule R999" in v.message
                   for v in rule_hits(report, PRAGMA_RULE_ID))

    def test_unused_pragma_is_flagged(self, tmp_path):
        report = lint_source(tmp_path, """
            def clean():
                # repro: allow[R003] nothing here actually fires
                return [1, 2, 3]
        """)
        assert any("unused pragma" in v.message
                   for v in rule_hits(report, PRAGMA_RULE_ID))

    def test_unused_pragma_flagging_can_be_disabled(self, tmp_path):
        report = lint_source(tmp_path, """
            def clean():
                # repro: allow[R003] nothing here actually fires
                return [1, 2, 3]
        """, flag_unused_pragmas=False)
        assert not rule_hits(report, PRAGMA_RULE_ID)


# -- framework: scopes, selection, parse errors, output, exit codes -------------


class TestFramework:
    def test_scope_override_rescopes_a_rule(self, tmp_path):
        source = TestR001WallClock.VIOLATION
        overrides = {"R001": Scope(include=("tools/*",))}
        target = tmp_path / "tools" / "x.py"
        target.parent.mkdir()
        target.write_text(textwrap.dedent(source))
        report = lint_paths([str(tmp_path)],
                            LintConfig(scope_overrides=overrides),
                            root=str(tmp_path))
        assert len(rule_hits(report, "R001")) == 1

    def test_select_runs_only_named_rules(self, tmp_path):
        source = TestR001WallClock.VIOLATION + """
        def emit(trace, sink):
            for ino in set(trace.observed):
                sink.write(ino)
        """
        report = lint_source(tmp_path, source, select=("R003",))
        assert report.rules == ["R003"]
        assert not rule_hits(report, "R001")
        assert len(rule_hits(report, "R003")) == 1

    def test_unknown_select_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lint_paths([str(tmp_path)], LintConfig(select=("R777",)))

    def test_syntax_error_is_reported_not_crashed(self, tmp_path):
        report = lint_source(tmp_path, "def broken(:\n")
        (hit,) = report.violations
        assert hit.rule == PARSE_ERROR_ID

    def test_every_rule_has_id_name_rationale_scope(self):
        assert set(RULES) == {"R001", "R002", "R003", "R004", "R005",
                              "R006", "R007", "R008", "R009", "R010"}
        for rule in RULES.values():
            assert rule.id and rule.name and rule.rationale
            assert rule.scope.include

    def test_violations_sort_by_location(self, tmp_path):
        source = TestR003UnorderedIteration.VIOLATION + """
        import time

        def stamp():
            return time.time()
        """
        report = lint_source(tmp_path, source)
        assert [v.line for v in report.violations] == \
            sorted(v.line for v in report.violations)


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        target = tmp_path / ENGINE_REL
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(TestR003UnorderedIteration.VIOLATION))
        rc = lint_main([str(target), "--format", "json",
                        "--root", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"R003": 1}
        assert payload["rules"] == ["R001", "R002", "R003", "R004",
                                    "R005", "R006", "R007", "R008",
                                    "R009", "R010"]
        (violation,) = payload["violations"]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "R003"
        assert violation["path"].endswith("fixture_mod.py")

    def test_clean_tree_json_and_exit_zero(self, tmp_path, capsys):
        target = tmp_path / "empty.py"
        target.write_text("x = 1\n")
        rc = lint_main([str(target), "--format", "json",
                        "--root", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        assert payload["violations"] == []


class TestCli:
    def test_missing_path_exits_2(self, capsys):
        assert lint_main(["definitely/not/a/path"]) == 2

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        target = tmp_path / "x.py"
        target.write_text("x = 1\n")
        assert lint_main([str(target), "--select", "R777"]) == 2

    def test_list_rules_mentions_every_rule(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in list(RULES) + [PRAGMA_RULE_ID, PARSE_ERROR_ID]:
            assert rule_id in out


# -- multi-line statements: pragma placement (regression) -----------------------


class TestMultiLinePragma:
    def test_pragma_on_violating_line_of_multiline_statement(self, tmp_path):
        report = lint_source(tmp_path, """
            def run(pool, items):
                futures = pool.submit(
                    lambda x: x,  # repro: allow[R004] inline test-only task
                    items,
                )
                return futures
        """)
        assert not rule_hits(report, "R004")
        assert not rule_hits(report, PRAGMA_RULE_ID)

    def test_pragma_on_sibling_line_of_multiline_statement(self, tmp_path):
        report = lint_source(tmp_path, """
            def run(pool, items):
                futures = pool.submit(
                    lambda x: x,
                    items,  # repro: allow[R004] inline test-only task
                )
                return futures
        """)
        assert not rule_hits(report, "R004")
        assert not rule_hits(report, PRAGMA_RULE_ID)

    def test_pragma_does_not_leak_across_statements(self, tmp_path):
        # A pragma inside one statement must not silence the next one.
        report = lint_source(tmp_path, """
            def run(pool, items):
                first = pool.submit(
                    lambda x: x,  # repro: allow[R004] inline test-only task
                )
                second = pool.submit(lambda x: x, items)
                return first, second
        """)
        assert len(rule_hits(report, "R004")) == 1


# -- SARIF output ---------------------------------------------------------------


class TestSarifOutput:
    def _emit(self, tmp_path, capsys):
        target = tmp_path / ENGINE_REL
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(
            TestR003UnorderedIteration.VIOLATION))
        rc = lint_main([str(target), "--format", "sarif",
                        "--root", str(tmp_path)])
        return rc, capsys.readouterr().out

    def test_sarif_2_1_0_shape(self, tmp_path, capsys):
        rc, out = self._emit(tmp_path, capsys)
        payload = json.loads(out)
        assert rc == 1
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = payload["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["fullDescription"]["text"]
        (result,) = run["results"]
        assert result["ruleId"] == "R003"
        assert rule_ids[result["ruleIndex"]] == "R003"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(
            "fixture_mod.py")
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1

    def test_sarif_is_deterministic(self, tmp_path, capsys):
        _, first = self._emit(tmp_path, capsys)
        _, second = self._emit(tmp_path, capsys)
        assert first == second

    def test_clean_tree_sarif_has_empty_results(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        rc = lint_main([str(target), "--format", "sarif",
                        "--root", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["runs"][0]["results"] == []


# -- the autofixer --------------------------------------------------------------


FIXABLE = """
    import json  # repro: allow[R001] stale pragma that suppresses nothing

    def emit(trace, sink):
        for ino in set(trace.observed):
            sink.write(json.dumps(ino))
"""


class TestAutofix:
    def _plant(self, tmp_path):
        target = tmp_path / ENGINE_REL
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(FIXABLE))
        return target

    def test_fix_rewrites_and_relints_clean(self, tmp_path, capsys):
        target = self._plant(tmp_path)
        rc = lint_main([str(target), "--fix", "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "fixed 2 violation(s)" in out
        fixed = target.read_text()
        assert "sorted(set(trace.observed))" in fixed
        assert "repro: allow" not in fixed
        assert lint_main([str(target), "--root", str(tmp_path)]) == 0

    def test_fix_is_idempotent(self, tmp_path, capsys):
        target = self._plant(tmp_path)
        lint_main([str(target), "--fix", "--root", str(tmp_path)])
        capsys.readouterr()
        once = target.read_text()
        rc = lint_main([str(target), "--fix", "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fixed 0 violation(s)" in out
        assert target.read_text() == once

    def test_fix_diff_previews_without_writing(self, tmp_path, capsys):
        target = self._plant(tmp_path)
        before = target.read_text()
        rc = lint_main([str(target), "--fix", "--diff",
                        "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "+++ " in out and "--- " in out
        assert "sorted(set(trace.observed))" in out
        assert target.read_text() == before

    def test_diff_without_fix_is_a_usage_error(self, tmp_path):
        target = self._plant(tmp_path)
        assert lint_main([str(target), "--diff",
                          "--root", str(tmp_path)]) == 2

    def test_unfixable_violations_keep_exit_one(self, tmp_path, capsys):
        target = tmp_path / ENGINE_REL
        target.parent.mkdir(parents=True)
        target.write_text(textwrap.dedent(TestR001WallClock.VIOLATION))
        rc = lint_main([str(target), "--fix", "--root", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "need a human" in out


# -- the meta-test: the committed tree is clean, with zero 3p imports -----------


BLOCKER = """
import sys

class _Blocker:
    banned = {"numpy", "scipy", "pytest", "hypothesis", "tomli",
              "pandas", "matplotlib"}

    def find_module(self, name, path=None):
        if name.split(".")[0] in self.banned:
            raise ImportError("third-party import in repro lint: " + name)
        return None

sys.meta_path.insert(0, _Blocker())
sys.path.insert(0, "@SRC@")

from repro.cli import main

raise SystemExit(main(["lint"]))
"""


class TestCommittedTree:
    def test_repro_lint_is_clean_and_dependency_free(self):
        """`repro lint` exits 0 on the committed tree without importing
        any third-party package (the CI step runs before pip install)."""
        script = BLOCKER.replace("@SRC@", os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, "-c", script], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
        # The whole-program pack (R007-R010) ran too, still stdlib-only.
        assert "10 rules" in proc.stdout

    def test_standalone_module_entry_point(self):
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True, env=env,
            timeout=120)
        assert proc.returncode == 0
        assert "R001" in proc.stdout
