"""Tests for fused multi-campaign sweeps (repro.core.engine.sweep).

The two load-bearing contracts:

* **fusion changes cost, not science** -- a fused grid produces
  record-for-record the same outcomes as running every cell as its own
  campaign, while profiling/golden-capturing each distinct app
  configuration exactly once per sweep;
* **the multiplexed checkpoint resumes exactly** -- killing a sweep and
  resuming its one JSONL file re-executes only the missing (cell, run
  index) pairs and reproduces the uninterrupted records.
"""

import io

import pytest

from repro.apps.nyx import FieldConfig, NyxApplication
from repro.cli import main
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.engine import (
    JsonlSink,
    ProfileGoldenCache,
    SweepCell,
    SweepPlan,
    execute_sweep,
    load_records_by_campaign,
)
from repro.core.metadata_campaign import MetadataCampaign
from repro.core.outcomes import Outcome, RunRecord
from repro.errors import FFISError
from repro.experiments.figure7 import run_figure7
from repro.fusefs.vfs import FFISFileSystem


class CountingFsFactory:
    """fs_factory that counts instantiations: every application run --
    fault-free or injected -- mounts exactly one fresh file system, so
    the count *is* the number of application executions."""

    def __init__(self):
        self.count = 0

    def __call__(self) -> FFISFileSystem:
        self.count += 1
        return FFISFileSystem()


@pytest.fixture(scope="module")
def other_nyx() -> NyxApplication:
    """A second, differently-configured tiny Nyx (distinct app config)."""
    return NyxApplication(seed=78, field_config=FieldConfig(
        shape=(16, 16, 16), n_halos=2, halo_amplitude=(800.0, 1500.0),
        halo_radius=(0.6, 0.8)), min_cells=3)


def two_app_grid(tiny_nyx, other_nyx, **kwargs):
    """A 6-cell fused figure7 grid over two distinct app configurations."""
    return run_figure7(n_runs=3, seed=4,
                       apps={"NYX": tiny_nyx, "QMC": other_nyx}, **kwargs)


class TestSharedFaultFreeWork:
    def test_each_app_config_profiled_and_captured_exactly_once(
            self, tiny_nyx, other_nyx):
        factory = CountingFsFactory()
        result = two_app_grid(tiny_nyx, other_nyx, fs_factory=factory)
        assert set(result.cells) == {"NYX-BF", "NYX-SW", "NYX-DW",
                                     "QMC-BF", "QMC-SW", "QMC-DW"}
        # 2 apps x 1 golden capture (each cell's profile is derived from
        # it, not re-executed) + 6 cells x 3 injection runs: were any
        # cell re-captured or separately profiled, the count would rise.
        assert factory.count == 2 * 1 + 6 * 3
        assert result.fault_free_runs == 2

    def test_fused_cells_match_solo_campaigns(self, tiny_nyx, other_nyx):
        fused = two_app_grid(tiny_nyx, other_nyx)
        for app, prefix in ((tiny_nyx, "NYX"), (other_nyx, "QMC")):
            for fm in ("BF", "SW", "DW"):
                solo = Campaign(app, CampaignConfig(
                    fault_model=fm, n_runs=3, seed=4)).run()
                assert fused.cells[f"{prefix}-{fm}"].records == solo.records

    def test_metadata_cells_share_one_locate(self, tiny_nyx):
        factory = CountingFsFactory()
        cache = ProfileGoldenCache()
        fine = MetadataCampaign(tiny_nyx, fs_factory=factory, seed=5)
        coarse = MetadataCampaign(tiny_nyx, fs_factory=factory, seed=5)
        cells = (fine.plan_cell("stride-256", cache, byte_stride=256),
                 coarse.plan_cell("stride-512", cache, byte_stride=512))
        traced = factory.count
        assert traced == 1          # one locate run serves both cells
        assert cache.locate_runs == 1
        result = execute_sweep(SweepPlan(cells=cells))
        assert factory.count == traced + result.total
        solo = MetadataCampaign(tiny_nyx, seed=5).run(byte_stride=256)
        assert result.records["stride-256"] == solo.records

    def test_mixed_cells_share_the_golden_capture(self, tiny_nyx):
        """A locate run *is* a golden capture: an instance-targeted cell
        planned after a metadata cell reuses its golden."""
        factory = CountingFsFactory()
        cache = ProfileGoldenCache()
        meta = MetadataCampaign(tiny_nyx, fs_factory=factory, seed=5)
        campaign = Campaign(tiny_nyx, CampaignConfig(fault_model="DW",
                                                     n_runs=2, seed=5),
                            fs_factory=factory)
        cells = (meta.plan_cell("meta", cache, byte_stride=512),
                 campaign.plan_cell("dw", cache))
        assert factory.count == 1   # locate only: its golden capture is
        assert cache.golden_runs == 0   # reused and the profile derived
        result = execute_sweep(SweepPlan(cells=cells))
        assert len(result.records["dw"]) == 2


class TestMultiplexedCheckpoint:
    def test_kill_resume_reproduces_uninterrupted_sweep(
            self, tiny_nyx, other_nyx, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        uninterrupted = two_app_grid(tiny_nyx, other_nyx)

        class Kill(Exception):
            pass

        def explode(done, total):
            if done >= 7:
                raise Kill()

        with pytest.raises(Kill):
            two_app_grid(tiny_nyx, other_nyx, results_path=path,
                         progress=explode)
        killed = load_records_by_campaign(path)
        assert sum(len(v) for v in killed.values()) == 7

        seen = []
        resumed = two_app_grid(tiny_nyx, other_nyx, results_path=path,
                               resume=True,
                               progress=lambda i, n: seen.append((i, n)))
        # Only the 11 missing (cell, run) pairs execute, counted from 8/18.
        assert seen == [(i, 18) for i in range(8, 19)]
        for label, cell in uninterrupted.cells.items():
            assert resumed.cells[label].records == cell.records
        # The checkpoint itself now holds the full grid, re-loadable
        # per cell.
        groups = load_records_by_campaign(path)
        assert all(len(records) == 3 for records in groups.values())
        assert len(groups) == 6

    def test_interleaved_dispatch_reaches_every_cell_early(
            self, tiny_nyx, other_nyx, tmp_path):
        """Round-robin dispatch: after only one round's worth of records,
        the checkpoint already holds a prefix of *every* cell."""
        path = str(tmp_path / "sweep.jsonl")

        class Kill(Exception):
            pass

        def explode(done, total):
            if done >= 6:
                raise Kill()

        with pytest.raises(Kill):
            two_app_grid(tiny_nyx, other_nyx, results_path=path,
                         progress=explode)
        groups = load_records_by_campaign(path)
        assert len(groups) == 6     # one record per cell, not 6 of cell one
        assert all(len(records) == 1 for records in groups.values())

    def test_resume_refuses_a_foreign_sweep_checkpoint(
            self, tiny_nyx, other_nyx, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        two_app_grid(tiny_nyx, other_nyx, results_path=path)
        cache = ProfileGoldenCache()
        foreign = Campaign(tiny_nyx, CampaignConfig(fault_model="BF",
                                                    n_runs=3, seed=99))
        other = Campaign(other_nyx, CampaignConfig(fault_model="DW",
                                                   n_runs=3, seed=99))
        plan = SweepPlan(cells=(foreign.plan_cell("a", cache),
                                other.plan_cell("b", cache)))
        with pytest.raises(FFISError, match="refusing to merge"):
            execute_sweep(plan, results_path=path, resume=True)

    def test_unstamped_lines_are_ambiguous_in_a_multicell_sweep(
            self, tiny_nyx, other_nyx, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        sink = JsonlSink(path)          # bare: no campaign stamps
        sink.emit(RunRecord(0, Outcome.BENIGN))
        sink.close()
        cache = ProfileGoldenCache()
        a = Campaign(tiny_nyx, CampaignConfig(fault_model="BF",
                                              n_runs=2, seed=4))
        b = Campaign(other_nyx, CampaignConfig(fault_model="BF",
                                               n_runs=2, seed=4))
        plan = SweepPlan(cells=(a.plan_cell("a", cache),
                                b.plan_cell("b", cache)))
        with pytest.raises(FFISError, match="unstamped"):
            execute_sweep(plan, results_path=path, resume=True)

    def test_unstamped_multicell_checkpoint_refused_upfront(self, tiny_nyx,
                                                            other_nyx,
                                                            tmp_path):
        """A multi-cell sweep with an unstamped cell would write a
        checkpoint resume can never split apart -- refuse before any
        run executes, not after hours of paid-for work."""
        cache = ProfileGoldenCache()
        a = Campaign(tiny_nyx, CampaignConfig(fault_model="BF",
                                              n_runs=2, seed=4))
        b = Campaign(other_nyx, CampaignConfig(fault_model="BF",
                                               n_runs=2, seed=4))
        stamped = a.plan_cell("a", cache)
        bare = SweepCell(key="b", plan=b.plan_cell("b", cache).plan)
        plan = SweepPlan(cells=(stamped, bare))
        path = str(tmp_path / "sweep.jsonl")
        with pytest.raises(FFISError, match="no campaign_id"):
            execute_sweep(plan, results_path=path)
        assert not (tmp_path / "sweep.jsonl").exists()
        # Without a checkpoint the combination is fine.
        result = execute_sweep(plan)
        assert len(result.records["b"]) == 2

    def test_sweep_resume_requires_results_path(self, tiny_nyx):
        cache = ProfileGoldenCache()
        campaign = Campaign(tiny_nyx, CampaignConfig(fault_model="BF",
                                                     n_runs=2, seed=4))
        plan = SweepPlan(cells=(campaign.plan_cell("a", cache),))
        with pytest.raises(FFISError, match="results_path"):
            execute_sweep(plan, resume=True)


class TestSweepPlanValidation:
    def test_duplicate_cell_keys_rejected(self, tiny_nyx):
        cache = ProfileGoldenCache()
        campaign = Campaign(tiny_nyx, CampaignConfig(fault_model="BF",
                                                     n_runs=2, seed=4))
        cell = campaign.plan_cell("a", cache)
        with pytest.raises(FFISError, match="duplicate"):
            SweepPlan(cells=(cell, cell))

    def test_colliding_campaign_identities_rejected(self, tiny_nyx):
        """Two cells whose checkpoint stamps are indistinguishable could
        never be split apart on resume -- refuse upfront."""
        cache = ProfileGoldenCache()
        campaign = Campaign(tiny_nyx, CampaignConfig(fault_model="BF",
                                                     n_runs=2, seed=4))
        cell = campaign.plan_cell("a", cache)
        clone = SweepCell(key="b", plan=cell.plan,
                          campaign_id=cell.campaign_id)
        with pytest.raises(FFISError, match="share a campaign identity"):
            SweepPlan(cells=(cell, clone))

    def test_empty_sweep_rejected(self):
        with pytest.raises(FFISError, match="at least one cell"):
            SweepPlan(cells=())


class TestParallelSweep:
    def test_parallel_fused_sweep_matches_serial(self, tiny_nyx, other_nyx):
        serial = two_app_grid(tiny_nyx, other_nyx)
        parallel = two_app_grid(tiny_nyx, other_nyx, workers=2)
        for label, cell in serial.cells.items():
            assert parallel.cells[label].records == cell.records


class TestSweepCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_sweep_grid_with_checkpoint(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        code, text = self.run_cli("sweep", "--app", "nyx",
                                  "--model", "BF", "--model", "DW",
                                  "--runs", "2", "--seed", "3",
                                  "--out", path)
        assert code == 0
        assert "nyx-BF" in text and "nyx-DW" in text
        assert "2 cells" in text
        groups = load_records_by_campaign(path)
        assert len(groups) == 2
        assert all(len(records) == 2 for records in groups.values())

    def test_sweep_resume_executes_nothing_when_complete(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        self.run_cli("sweep", "--app", "nyx", "--model", "DW",
                     "--runs", "2", "--seed", "3", "--out", path)
        code, text = self.run_cli("sweep", "--app", "nyx", "--model", "DW",
                                  "--runs", "2", "--seed", "3",
                                  "--out", path, "--resume")
        assert code == 0
        assert "0 executed, 2 resumed" in text

    def test_sweep_resume_requires_out(self):
        with pytest.raises(SystemExit):
            self.run_cli("sweep", "--app", "nyx", "--model", "BF",
                         "--runs", "2", "--resume")

    def test_run_rejects_out_for_sweepless_drivers(self):
        with pytest.raises(SystemExit):
            self.run_cli("run", "table1", "--out", "x.jsonl")

    def test_run_resume_requires_out(self):
        with pytest.raises(SystemExit):
            self.run_cli("run", "figure7", "--resume")


class _RecordingSink:
    """An extra sink that remembers the exact record stream it saw."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)

    def close(self):
        pass


class TestResumedRecordsReachSinks:
    """Regression: a resumed sweep must feed its previously-completed
    records through every *extra* sink, in interleaved plan order.  A
    tally over a resumed sweep used to see only the re-executed
    remainder, silently undercounting every checkpointed run."""

    def plan(self):
        from tests.test_scenario_determinism import ToyApp

        app = ToyApp()
        cache = ProfileGoldenCache()
        cells = []
        for key, model in (("BF", "BF"), ("DW", "DW")):
            campaign = Campaign(app, CampaignConfig(
                fault_model=model, n_runs=4, seed=11))
            cells.append(campaign.plan_cell(key, cache))
        return SweepPlan(cells=tuple(cells))

    def test_fully_resumed_sweep_still_tallies_every_run(self, tmp_path):
        from repro.core.engine import TallySink
        from repro.core.outcomes import OutcomeTally

        path = str(tmp_path / "sweep.jsonl")
        full = execute_sweep(self.plan(), results_path=path)
        expected = OutcomeTally.from_records(
            [r for records in full.records.values() for r in records])
        sink = TallySink()
        resumed = execute_sweep(self.plan(), results_path=path,
                                resume=True, sinks=(sink,))
        assert resumed.executed == 0
        assert sink.tally == expected

    def test_resumed_records_replay_in_plan_order(self, tmp_path):
        reference = _RecordingSink()
        execute_sweep(self.plan(),
                      results_path=str(tmp_path / "ref.jsonl"),
                      sinks=(reference,))
        path = str(tmp_path / "sweep.jsonl")
        execute_sweep(self.plan(), results_path=path)
        replayed = _RecordingSink()
        execute_sweep(self.plan(), results_path=path, resume=True,
                      sinks=(replayed,))
        assert replayed.records == reference.records

    def test_partial_resume_tallies_old_and_new_runs(self, tmp_path):
        from repro.core.engine import TallySink
        from repro.core.outcomes import OutcomeTally

        path = str(tmp_path / "sweep.jsonl")
        full = execute_sweep(self.plan(), results_path=path)
        expected = OutcomeTally.from_records(
            [r for records in full.records.values() for r in records])
        with open(path, "rb") as f:
            lines = f.readlines()
        with open(path, "wb") as f:
            f.writelines(lines[:3])
        sink = TallySink()
        resumed = execute_sweep(self.plan(), results_path=path,
                                resume=True, sinks=(sink,))
        assert resumed.executed == len(lines) - 3
        assert sink.tally == expected
        assert resumed.records == full.records
