"""Tests for repro.util.rngstream and repro.util.binary."""

import pytest
from hypothesis import given, strategies as st

from repro.util.binary import checksum32, pack_uint, pad_to, unpack_uint
from repro.util.rngstream import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_not_concatenation(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestRngStream:
    def test_same_stream_same_draws(self):
        a = RngStream(9, "x").generator().random(4)
        b = RngStream(9, "x").generator().random(4)
        assert (a == b).all()

    def test_child_equals_full_path(self):
        assert RngStream(9).child("a").child("b").seed == RngStream(9, "a", "b").seed

    def test_sibling_independence(self):
        a = RngStream(9, "run", 0).generator().random(4)
        b = RngStream(9, "run", 1).generator().random(4)
        assert not (a == b).all()

    def test_generator_restarts_from_seed(self):
        stream = RngStream(9, "x")
        assert (stream.generator().random(3) == stream.generator().random(3)).all()


class TestBinary:
    def test_pack_unpack(self):
        buf = pack_uint(0xDEADBEEF, 8)
        assert unpack_uint(buf, 0, 8) == 0xDEADBEEF
        assert len(buf) == 8

    def test_pack_overflow(self):
        with pytest.raises(ValueError):
            pack_uint(256, 1)
        with pytest.raises(ValueError):
            pack_uint(-1, 4)

    def test_unpack_bounds(self):
        with pytest.raises(ValueError):
            unpack_uint(b"\x00\x00", 1, 2)

    @given(st.integers(0, 2**63), st.integers(8, 9))
    def test_roundtrip(self, value, nbytes):
        assert unpack_uint(pack_uint(value, nbytes), 0, nbytes) == value

    def test_pad_to(self):
        assert pad_to(b"ab", 4) == b"ab\x00\x00"
        assert pad_to(b"ab", 2) == b"ab"
        with pytest.raises(ValueError):
            pad_to(b"abc", 2)

    def test_checksum_stable(self):
        assert checksum32(b"hello") == checksum32(b"hello")
        assert checksum32(b"hello") != checksum32(b"hellp")
