"""Round-trip and strictness tests for the mini-HDF5 writer/reader/API."""

import numpy as np
import pytest

from repro.errors import FFISError, FormatError
from repro.mhdf5.api import File
from repro.mhdf5.fieldmap import FieldClass
from repro.mhdf5.reader import Hdf5Reader, list_datasets, read_dataset
from repro.mhdf5.superblock import CONSISTENCY_FLAGS_OFFSET
from repro.mhdf5.writer import write_file


@pytest.fixture
def rho(rng):
    return rng.lognormal(0, 0.5, (8, 8, 8)).astype(np.float32)


class TestWriteReadRoundtrip:
    def test_single_dataset(self, mp, rho):
        write_file(mp, "/f.h5", [("density", rho)])
        back = read_dataset(mp, "/f.h5", "density")
        assert back.shape == rho.shape
        assert np.array_equal(back.astype(np.float32), rho)

    def test_float64_dataset(self, mp, rng):
        data = rng.normal(0, 1, (4, 6))
        write_file(mp, "/f.h5", [("walkers", data)])
        assert np.array_equal(read_dataset(mp, "/f.h5", "walkers"), data)

    def test_multiple_datasets(self, mp, rng):
        a = rng.random((4, 4)).astype(np.float32)
        b = rng.random((2, 3, 4)).astype(np.float32)
        write_file(mp, "/f.h5", [("a", a), ("b", b)])
        assert sorted(list_datasets(mp, "/f.h5")) == ["a", "b"]
        assert np.array_equal(read_dataset(mp, "/f.h5", "a").astype(np.float32), a)
        assert np.array_equal(read_dataset(mp, "/f.h5", "b").astype(np.float32), b)

    def test_write_is_deterministic(self, fs, rho):
        from repro.fusefs.mount import mount
        blobs = []
        for _ in range(2):
            fs.format()
            with mount(fs) as mp:
                write_file(mp, "/f.h5", [("density", rho)])
                blobs.append(mp.read_file("/f.h5"))
        assert blobs[0] == blobs[1]

    def test_write_order_is_data_then_metadata_then_flags(self, fs, rho):
        from repro.fusefs.mount import mount
        offsets = []
        fs.interposer.add_hook(
            "ffis_write", lambda c: offsets.append(c.args["offset"]))
        with mount(fs) as mp:
            result = write_file(mp, "/f.h5", [("density", rho)])
        assert offsets[-1] == CONSISTENCY_FLAGS_OFFSET   # final: flags update
        assert offsets[-2] == 0                           # penultimate: metadata
        assert all(off >= result.plan.metadata_size for off in offsets[:-2])

    def test_ard_equals_metadata_size(self, mp, rho):
        result = write_file(mp, "/f.h5", [("density", rho)])
        reader = Hdf5Reader(mp, "/f.h5")
        info = reader.info("density")
        assert info.layout.data_address == result.plan.metadata_size
        assert reader.metadata_extent() == result.plan.metadata_size

    def test_unsupported_dtype_rejected(self, mp):
        with pytest.raises(TypeError):
            write_file(mp, "/f.h5", [("ints", np.arange(4))])

    def test_empty_dataset_list_rejected(self, mp):
        with pytest.raises(ValueError):
            write_file(mp, "/f.h5", [])


class TestFieldMapCoverage:
    def test_every_metadata_byte_is_mapped(self, mp, rho):
        result = write_file(mp, "/f.h5", [("density", rho)])
        fm = result.fieldmap
        assert fm.extent == result.plan.metadata_size
        for offset in range(result.plan.metadata_size):
            assert fm.field_at(offset) is not None, f"unmapped byte {offset}"

    def test_reserved_dominates(self, mp, rho):
        """The paper's benign-byte sources: unused capacity + reserved."""
        result = write_file(mp, "/f.h5", [("density", rho)])
        totals = result.fieldmap.bytes_by_class()
        reserved_fraction = totals[FieldClass.RESERVED] / result.plan.metadata_size
        assert reserved_fraction > 0.75

    def test_btree_share_matches_paper(self, mp, rho):
        result = write_file(mp, "/f.h5", [("density", rho)])
        share = result.fieldmap.container_fraction("bTree")
        assert 0.65 < share < 0.78   # paper: ~72 %


class TestReaderStrictness:
    def corrupt(self, mp, path, offset, xor=0xFF):
        data = bytearray(mp.read_file(path))
        data[offset] ^= xor
        with mp.open(path, "r+") as f:
            f.pwrite(bytes(data[offset:offset + 1]), offset)

    def test_superblock_signature_crash(self, mp, rho):
        write_file(mp, "/f.h5", [("density", rho)])
        self.corrupt(mp, "/f.h5", 0)
        with pytest.raises(FormatError):
            Hdf5Reader(mp, "/f.h5")

    def test_unclean_close_flag_crash(self, mp, rho):
        write_file(mp, "/f.h5", [("density", rho)])
        self.corrupt(mp, "/f.h5", CONSISTENCY_FLAGS_OFFSET)
        with pytest.raises(FormatError, match="cleanly closed"):
            Hdf5Reader(mp, "/f.h5")

    def test_truncated_file_crash(self, mp, rho):
        write_file(mp, "/f.h5", [("density", rho)])
        mp.truncate("/f.h5", 20)
        with pytest.raises(FormatError):
            Hdf5Reader(mp, "/f.h5")

    def test_allocation_smaller_than_extent_crash(self, mp, rho):
        """The paper's asymmetric Size observation, small side."""
        result = write_file(mp, "/f.h5", [("density", rho)])
        span = next(s for s in result.fieldmap
                    if s.name == "Size" and s.container == "layout")
        smaller = (rho.size * 4 - 1).to_bytes(8, "little")
        with mp.open("/f.h5", "r+") as f:
            f.pwrite(smaller, span.start)
        with pytest.raises(FormatError, match="smaller"):
            Hdf5Reader(mp, "/f.h5").read("density")

    def test_allocation_larger_is_harmless(self, mp, rho):
        """...and the large side."""
        result = write_file(mp, "/f.h5", [("density", rho)])
        span = next(s for s in result.fieldmap
                    if s.name == "Size" and s.container == "layout")
        larger = (rho.size * 4 + 4096).to_bytes(8, "little")
        with mp.open("/f.h5", "r+") as f:
            f.pwrite(larger, span.start)
        back = Hdf5Reader(mp, "/f.h5").read("density")
        assert np.array_equal(back.astype(np.float32), rho)

    def test_missing_dataset(self, mp, rho):
        write_file(mp, "/f.h5", [("density", rho)])
        with pytest.raises(FormatError):
            Hdf5Reader(mp, "/f.h5").read("nope")

    def test_reserved_bytes_are_truly_ignored(self, mp, rho):
        """Corrupting any RESERVED byte must not change the decode."""
        result = write_file(mp, "/f.h5", [("density", rho)])
        golden = Hdf5Reader(mp, "/f.h5").read("density")
        reserved = [s for s in result.fieldmap
                    if s.cls is FieldClass.RESERVED][::7]  # sample spans
        for span in reserved:
            if span.start >= CONSISTENCY_FLAGS_OFFSET and span.start < 48:
                continue  # the flags region is validated by design
            self.corrupt(mp, "/f.h5", span.start)
            assert np.array_equal(Hdf5Reader(mp, "/f.h5").read("density"), golden), \
                f"reserved byte {span.start} ({span.qualified_name}) was not ignored"
            self.corrupt(mp, "/f.h5", span.start)  # restore


class TestHighLevelApi:
    def test_file_api_roundtrip(self, mp, rho):
        with File(mp, "/api.h5", "w") as f:
            f.create_dataset("density", rho)
        with File(mp, "/api.h5", "r") as f:
            assert "density" in f
            assert np.array_equal(f["density"].astype(np.float32), rho)

    def test_write_mode_rejects_read(self, mp, rho):
        with File(mp, "/api.h5", "w") as f:
            f.create_dataset("density", rho)
            with pytest.raises(FFISError):
                f["density"]

    def test_duplicate_dataset_rejected(self, mp, rho):
        with File(mp, "/api.h5", "w") as f:
            f.create_dataset("d", rho)
            with pytest.raises(FFISError):
                f.create_dataset("d", rho)

    def test_empty_close_rejected(self, mp):
        f = File(mp, "/api.h5", "w")
        with pytest.raises(FFISError):
            f.close()

    def test_no_flush_on_error(self, mp, rho):
        with pytest.raises(RuntimeError):
            with File(mp, "/api.h5", "w") as f:
                f.create_dataset("d", rho)
                raise RuntimeError("boom")
        assert not mp.exists("/api.h5")
