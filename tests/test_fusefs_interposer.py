"""Tests for the interposer hook chain and the profiler hooks."""

from repro.fusefs.interposer import CallDecision, Interposer, PrimitiveCall
from repro.fusefs.mount import mount
from repro.fusefs.profiler_hooks import CountingHook, TraceHook
from repro.fusefs.vfs import FFISFileSystem


class TestInterposer:
    def test_seqno_increments_per_primitive(self):
        ip = Interposer()
        assert ip.dispatch("ffis_write", {}).seqno == 0
        assert ip.dispatch("ffis_write", {}).seqno == 1
        assert ip.dispatch("ffis_read", {}).seqno == 0

    def test_hooks_run_in_order(self):
        ip = Interposer()
        order = []
        ip.add_hook("p", lambda c: order.append("a"))
        ip.add_hook("p", lambda c: order.append("b"))
        ip.dispatch("p", {})
        assert order == ["a", "b"]

    def test_global_hooks_run_first(self):
        ip = Interposer()
        order = []
        ip.add_hook("p", lambda c: order.append("specific"))
        ip.add_global_hook(lambda c: order.append("global"))
        ip.dispatch("p", {})
        assert order == ["global", "specific"]

    def test_suppress_decision_sticks(self):
        ip = Interposer()
        ip.add_hook("p", lambda c: CallDecision.SUPPRESS)
        ip.add_hook("p", lambda c: CallDecision.PROCEED)
        assert ip.dispatch("p", {}).suppressed

    def test_hook_mutates_args(self):
        ip = Interposer()

        def rewrite(call: PrimitiveCall):
            call.args["buf"] = b"mutated"

        ip.add_hook("p", rewrite)
        assert ip.dispatch("p", {"buf": b"original"}).args["buf"] == b"mutated"

    def test_remove_hook(self):
        ip = Interposer()
        hook = lambda c: CallDecision.SUPPRESS  # noqa: E731
        ip.add_hook("p", hook)
        ip.remove_hook("p", hook)
        assert not ip.dispatch("p", {}).suppressed

    def test_reset_counters(self):
        ip = Interposer()
        ip.dispatch("p", {})
        ip.reset_counters()
        assert ip.count("p") == 0
        assert ip.dispatch("p", {}).seqno == 0


class TestProfilerHooks:
    def test_counting_hook(self):
        fs = FFISFileSystem()
        hook = CountingHook()
        fs.interposer.add_hook("ffis_write", hook)
        with mount(fs) as mp:
            mp.write_file("/f", b"x" * 100, block_size=30)
        assert hook.count == 4
        assert hook.bytes_written == 100

    def test_trace_hook_summarizes_buffers(self):
        fs = FFISFileSystem()
        hook = TraceHook()
        fs.interposer.add_hook("ffis_write", hook)
        with mount(fs) as mp:
            mp.write_file("/f", b"abcdef")
        assert len(hook.records) == 1
        assert hook.records[0].summary["buf"] == "<6 bytes>"

    def test_trace_hook_keeps_buffers_when_asked(self):
        fs = FFISFileSystem()
        hook = TraceHook(keep_buffers=True)
        fs.interposer.add_hook("ffis_write", hook)
        with mount(fs) as mp:
            mp.write_file("/f", b"abcdef")
        assert hook.records[0].summary["buf"] == b"abcdef"


class TestSuppressionSemantics:
    def test_suppressed_write_leaves_hole(self):
        """A suppressed write followed by a later write reads back zeros --
        the dropped-write manifestation."""
        fs = FFISFileSystem()

        def drop_first(call: PrimitiveCall):
            if call.seqno == 0:
                return CallDecision.SUPPRESS
            return None

        fs.interposer.add_hook("ffis_write", drop_first)
        with mount(fs) as mp:
            with mp.open("/f", "w") as f:
                f.pwrite(b"AAAA", 0)
                f.pwrite(b"BBBB", 4)
            assert mp.read_file("/f") == b"\x00\x00\x00\x00BBBB"

    def test_suppressed_write_still_reports_success(self):
        fs = FFISFileSystem()
        fs.interposer.add_hook("ffis_write", lambda c: CallDecision.SUPPRESS)
        with mount(fs) as mp:
            with mp.open("/f", "w") as f:
                assert f.pwrite(b"AAAA", 0) == 4
            assert mp.stat("/f").size == 4
