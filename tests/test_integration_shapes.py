"""End-to-end integration tests asserting the paper's qualitative shapes.

These run real (small) campaigns and check the *direction* of every
headline claim in the evaluation -- who wins, not exact percentages.
"""

import pytest

from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.outcomes import Outcome
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.mhdf5.repair import repair_file

N_RUNS = 40


@pytest.fixture(scope="module")
def nyx_results(tiny_nyx_module):
    results = {}
    for fm in ("BF", "SW", "DW"):
        config = CampaignConfig(fault_model=fm, n_runs=N_RUNS, seed=13)
        results[fm] = Campaign(tiny_nyx_module, config).run()
    return results


@pytest.fixture(scope="module")
def tiny_nyx_module():
    from repro.apps.nyx import FieldConfig, NyxApplication
    config = FieldConfig(shape=(16, 16, 16), n_halos=2,
                         halo_amplitude=(800.0, 1500.0),
                         halo_radius=(0.6, 0.8))
    return NyxApplication(seed=77, field_config=config, min_cells=3)


class TestNyxShapes:
    def test_bf_mostly_benign(self, nyx_results):
        assert nyx_results["BF"].rate(Outcome.BENIGN) > 0.6

    def test_dw_sdc_dominates(self, nyx_results):
        """Paper: 1000/1000 dropped writes were SDC (data writes)."""
        dw = nyx_results["DW"]
        data_write_records = [r for r in dw.records
                              if r.outcome is not Outcome.CRASH]
        assert data_write_records, "every DW run crashed?!"
        assert all(r.outcome is Outcome.SDC for r in data_write_records)

    def test_sw_more_benign_than_dw(self, nyx_results):
        assert nyx_results["SW"].rate(Outcome.BENIGN) > \
            nyx_results["DW"].rate(Outcome.BENIGN)

    def test_nyx_sdc_lowest_for_bf(self, nyx_results):
        """BF has the lowest SDC rate among the three fault models."""
        bf_sdc = nyx_results["BF"].rate(Outcome.SDC)
        assert bf_sdc <= nyx_results["DW"].rate(Outcome.SDC)
        assert bf_sdc <= nyx_results["SW"].rate(Outcome.SDC) + 0.05


class TestAverageValueDetector:
    def test_dw_sdc_upgraded_to_detected(self, tiny_nyx_module):
        """Fig. 7's note: with the average-value method every Nyx SDC
        becomes detected."""
        from repro.apps.nyx import NyxApplication
        detector_app = NyxApplication(
            seed=77, field_config=tiny_nyx_module.field_config,
            min_cells=3, use_average_detector=True)
        config = CampaignConfig(fault_model="DW", n_runs=20, seed=13)
        result = Campaign(detector_app, config).run()
        assert result.rate(Outcome.SDC) == 0.0
        assert result.rate(Outcome.DETECTED) > 0.5


class TestMetadataRepairEndToEnd:
    def test_sdc_fields_repairable(self, tiny_nyx_module):
        """Every Table IV field the paper proposes corrections for is
        actually corrected by repair_file on a corrupted live file."""
        fieldmap = None
        fs = FFISFileSystem()
        with mount(fs) as mp:
            tiny_nyx_module.execute(mp)
            fieldmap = tiny_nyx_module.last_write_result.fieldmap
            path = tiny_nyx_module.output_paths()[0]
            for substring, bit in [("Exponent Bias", 2),
                                   ("Mantissa Size", 0),
                                   ("Address of Raw Data", 4)]:
                span = next(s for s in fieldmap if substring in s.name)
                raw = bytearray(mp.read_file(path))
                raw[span.start] ^= 1 << bit
                with mp.open(path, "r+") as f:
                    f.pwrite(bytes(raw[span.start:span.start + 1]), span.start)
                report = repair_file(mp, path, "baryon_density")
                assert report.success, f"{substring}: {report.actions}"


@pytest.mark.slow
class TestCrossApplicationContrast:
    def test_qmcpack_less_resilient_than_nyx(self, tiny_nyx_module):
        """The paper's headline contrast: QMCPACK SDC rates dwarf Nyx's."""
        from repro.apps.qmcpack import DmcParams, QmcpackApplication, VmcParams
        qmc = QmcpackApplication(
            seed=5,
            vmc_params=VmcParams(n_walkers=128, n_blocks=30, warmup_blocks=5),
            dmc_params=DmcParams(target_walkers=128, n_blocks=80,
                                 steps_per_block=8),
            equilibration=15)
        qmc_bf = Campaign(qmc, CampaignConfig(fault_model="BF", n_runs=25,
                                              seed=13)).run()
        nyx_bf = Campaign(tiny_nyx_module,
                          CampaignConfig(fault_model="BF", n_runs=25,
                                         seed=13)).run()
        assert qmc_bf.rate(Outcome.SDC) > nyx_bf.rate(Outcome.SDC)
