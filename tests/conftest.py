"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.nyx import FieldConfig, NyxApplication
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem


@pytest.fixture
def fs() -> FFISFileSystem:
    return FFISFileSystem()


@pytest.fixture
def mp(fs):
    """A mounted file system for the duration of one test."""
    with mount(fs) as mount_point:
        yield mount_point


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# The tiny Nyx workload shared by integration-style tests.  Session-scoped
# because field generation is the expensive part and apps are stateless
# across runs by design.
@pytest.fixture(scope="session")
def tiny_nyx() -> NyxApplication:
    config = FieldConfig(shape=(16, 16, 16), n_halos=2,
                         halo_amplitude=(800.0, 1500.0),
                         halo_radius=(0.6, 0.8))
    return NyxApplication(seed=77, field_config=config, min_cells=3)


@pytest.fixture(scope="session")
def tiny_nyx_golden(tiny_nyx):
    fs = FFISFileSystem()
    with mount(fs) as mp:
        return tiny_nyx.capture_golden(mp)
