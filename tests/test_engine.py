"""Tests for the campaign execution engine: plans, executors, sinks.

The determinism contract is the load-bearing one: a campaign must
produce record-for-record identical results whether it runs serially,
across worker processes, or split over an interrupted-then-resumed pair
of invocations.
"""

import io
import json
import pickle

import pytest

from repro.analysis.stats import as_tally, campaign_error_bars
from repro.cli import main
from repro.core.campaign import Campaign, InjectionContext
from repro.core.config import CampaignConfig
from repro.core.engine import (
    JsonlSink,
    ParallelExecutor,
    RunSpec,
    SerialExecutor,
    TallySink,
    completed_indices,
    execute_plan,
    load_records,
    make_executor,
    record_from_json,
    record_to_json,
)
from repro.core.metadata_campaign import MetadataCampaign
from repro.core.outcomes import Outcome, OutcomeTally, RunRecord
from repro.errors import ConfigError, FFISError


@pytest.fixture
def bf_config():
    return CampaignConfig(fault_model="BF", n_runs=6, seed=11)


class TestRunSpec:
    def test_picklable(self):
        spec = RunSpec(run_index=4, seed=99, target_instance=2, phase="mAdd",
                       byte_offset=7, bit_index=3, field_name="f")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_plan_is_declarative(self, tiny_nyx, bf_config):
        plan = Campaign(tiny_nyx, bf_config).plan()
        assert len(plan) == 6
        assert [spec.run_index for spec in plan] == list(range(6))
        # Replanning yields the same specs: nothing depends on call order.
        again = Campaign(tiny_nyx, bf_config).plan()
        assert plan.specs == again.specs


class TestExecutorEquivalence:
    def test_parallel_matches_serial_records(self, tiny_nyx, bf_config):
        serial = Campaign(tiny_nyx, bf_config).run()
        parallel = Campaign(tiny_nyx, bf_config).run(workers=2)
        assert serial.records == parallel.records

    def test_explicit_executors_interchangeable(self, tiny_nyx, bf_config):
        plan = Campaign(tiny_nyx, bf_config).plan()
        serial = list(SerialExecutor().map(plan))
        parallel = list(ParallelExecutor(workers=3).map(plan))
        assert serial == parallel

    def test_metadata_sweep_parallel_matches_serial(self, tiny_nyx):
        serial = MetadataCampaign(tiny_nyx, seed=5).run(byte_stride=256)
        parallel = MetadataCampaign(tiny_nyx, seed=5, workers=2).run(
            byte_stride=256)
        assert serial.records == parallel.records

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(4), ParallelExecutor)
        with pytest.raises(ConfigError):
            make_executor(0)
        with pytest.raises(ConfigError):
            ParallelExecutor(workers=0)

    def test_config_validates_engine_knobs(self):
        with pytest.raises(ConfigError):
            CampaignConfig(workers=0)
        with pytest.raises(ConfigError):
            CampaignConfig(resume=True)
        config = CampaignConfig.from_dict(
            {"fault_model": "BF", "workers": 4,
             "results_path": "r.jsonl", "resume": True})
        assert config.workers == 4


class _InstrumentedFuture:
    def __init__(self, pool, value):
        self._pool, self._value = pool, value

    def result(self):
        self._pool.outstanding -= 1
        return self._value


class _InstrumentedPool:
    """In-process ProcessPoolExecutor stand-in counting live futures."""

    last = None

    def __init__(self, max_workers=None, mp_context=None,
                 initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)
        self.outstanding = 0
        self.max_outstanding = 0
        self.submissions = 0
        _InstrumentedPool.last = self

    def submit(self, fn, *args):
        self.outstanding += 1
        self.submissions += 1
        self.max_outstanding = max(self.max_outstanding, self.outstanding)
        return _InstrumentedFuture(self, fn(*args))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestBoundedSubmission:
    """The parallel backend must stream specs through a bounded window,
    not materialize O(n) futures upfront (the million-run scale target)."""

    @pytest.fixture(autouse=True)
    def _instrument(self, monkeypatch):
        from repro.core.engine import executor as executor_module
        from repro.core.engine import runner as runner_module

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor",
                            _InstrumentedPool)
        monkeypatch.setattr(
            runner_module, "execute_run_spec",
            lambda context, spec: RunRecord(spec.run_index, Outcome.BENIGN))

    def test_in_flight_futures_stay_bounded(self):
        from repro.core.engine import RunPlan

        n = 500
        plan = RunPlan(context=None,
                       specs=tuple(RunSpec(run_index=i) for i in range(n)))
        executor = ParallelExecutor(workers=2, chunk_size=8)
        records = list(executor.map(plan))
        pool = _InstrumentedPool.last
        assert [r.run_index for r in records] == list(range(n))
        # Chunked dispatch: ceil(n / chunk_size) futures, not n.
        expected = -(-n // executor.chunk_size)
        assert pool.submissions == expected
        assert pool.max_outstanding <= \
            2 * ParallelExecutor.IN_FLIGHT_PER_WORKER

    def test_tagged_stream_is_bounded_too(self):
        n = 300
        items = [("cell", RunSpec(run_index=i)) for i in range(n)]
        executor = ParallelExecutor(workers=3)
        results = list(executor.map_tagged({"cell": None}, iter(items)))
        pool = _InstrumentedPool.last
        assert [r.run_index for _, r in results] == list(range(n))
        assert {key for key, _ in results} == {"cell"}
        assert pool.max_outstanding <= \
            3 * ParallelExecutor.IN_FLIGHT_PER_WORKER


class TestCheckpointResume:
    def test_resume_completes_exactly_the_remainder(self, tiny_nyx,
                                                    bf_config, tmp_path):
        path = str(tmp_path / "results.jsonl")
        fresh = Campaign(tiny_nyx, bf_config).run()
        # "Kill" the campaign after 2 of 6 runs ...
        Campaign(tiny_nyx, bf_config).run(n_runs=2, results_path=path)
        assert completed_indices(path) == {0, 1}
        # ... and resume: only runs 2..5 execute, the merge is identical.
        seen = []
        resumed = Campaign(tiny_nyx, bf_config).run(
            results_path=path, resume=True,
            progress=lambda i, n: seen.append((i, n)))
        assert seen == [(3, 6), (4, 6), (5, 6), (6, 6)]
        assert resumed.records == fresh.records
        assert load_records(path) == fresh.records

    def test_resume_with_nothing_left(self, tiny_nyx, bf_config, tmp_path):
        path = str(tmp_path / "results.jsonl")
        Campaign(tiny_nyx, bf_config).run(results_path=path)
        seen = []
        resumed = Campaign(tiny_nyx, bf_config).run(
            results_path=path, resume=True,
            progress=lambda i, n: seen.append((i, n)))
        assert seen == []
        assert len(resumed.records) == 6

    def test_truncated_final_line_is_dropped(self, tiny_nyx, bf_config,
                                             tmp_path):
        path = str(tmp_path / "results.jsonl")
        Campaign(tiny_nyx, bf_config).run(n_runs=3, results_path=path)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"v": 1, "run_index": 3, "outc')   # killed mid-write
        assert completed_indices(path) == {0, 1, 2}
        resumed = Campaign(tiny_nyx, bf_config).run(results_path=path,
                                                    resume=True)
        assert resumed.records == Campaign(tiny_nyx, bf_config).run().records
        # The appended records must not have merged onto the partial
        # line: the checkpoint stays fully decodable and re-resumable.
        assert load_records(path) == resumed.records
        again = Campaign(tiny_nyx, bf_config).run(results_path=path,
                                                  resume=True)
        assert again.records == resumed.records

    def test_resume_requires_results_path(self, tiny_nyx):
        campaign = MetadataCampaign(tiny_nyx, seed=5)
        with pytest.raises(FFISError):
            campaign.run(byte_stride=256, resume=True)

    def test_resume_refuses_foreign_checkpoint(self, tiny_nyx, bf_config,
                                               tmp_path):
        path = str(tmp_path / "results.jsonl")
        Campaign(tiny_nyx, bf_config).run(n_runs=2, results_path=path)
        other = CampaignConfig(fault_model="DW", n_runs=6, seed=11)
        with pytest.raises(FFISError, match="refusing to merge"):
            Campaign(tiny_nyx, other).run(results_path=path, resume=True)
        # Different stride on a metadata sweep is a different campaign too.
        meta_path = str(tmp_path / "meta.jsonl")
        MetadataCampaign(tiny_nyx, seed=5).run(byte_stride=256,
                                               results_path=meta_path)
        with pytest.raises(FFISError, match="refusing to merge"):
            MetadataCampaign(tiny_nyx, seed=5).run(byte_stride=128,
                                                   results_path=meta_path,
                                                   resume=True)

    def test_resume_refuses_differently_configured_app(self, tiny_nyx,
                                                       bf_config, tmp_path):
        """Same app *name*, different golden outputs -> different campaign."""
        from repro.apps.nyx import FieldConfig, NyxApplication

        path = str(tmp_path / "results.jsonl")
        Campaign(tiny_nyx, bf_config).run(n_runs=2, results_path=path)
        other = NyxApplication(seed=78, field_config=FieldConfig(
            shape=(16, 16, 16), n_halos=2, halo_amplitude=(800.0, 1500.0),
            halo_radius=(0.6, 0.8)), min_cells=3)
        with pytest.raises(FFISError, match="refusing to merge"):
            Campaign(other, bf_config).run(results_path=path, resume=True)

    def test_interrupted_parallel_campaign_keeps_checkpoint(self, tiny_nyx,
                                                            bf_config,
                                                            tmp_path):
        """A consumer-side failure mid-stream must surface, leave the
        checkpoint decodable, and allow a clean resume."""
        path = str(tmp_path / "results.jsonl")

        def explode(done, total):
            if done >= 2:
                raise RuntimeError("simulated interrupt")

        with pytest.raises(RuntimeError):
            Campaign(tiny_nyx, bf_config).run(results_path=path,
                                              workers=2, progress=explode)
        partial = load_records(path)
        assert len(partial) >= 2
        resumed = Campaign(tiny_nyx, bf_config).run(results_path=path,
                                                    resume=True)
        assert resumed.records == Campaign(tiny_nyx, bf_config).run().records

    def test_resume_accepts_unstamped_legacy_checkpoint(self, tiny_nyx,
                                                        bf_config, tmp_path):
        path = str(tmp_path / "results.jsonl")
        sink = JsonlSink(path)   # bare sink: no campaign stamp
        for record in Campaign(tiny_nyx, bf_config).run(n_runs=2).records:
            sink.emit(record)
        sink.close()
        resumed = Campaign(tiny_nyx, bf_config).run(results_path=path,
                                                    resume=True)
        assert len(resumed.records) == 6

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        good = json.dumps(record_to_json(RunRecord(0, Outcome.BENIGN)))
        with open(path, "w", encoding="utf-8") as f:
            f.write("not json\n" + good + "\n")
        with pytest.raises(FFISError):
            load_records(path)

    def test_corrupt_terminated_final_line_is_an_error(self, tmp_path):
        """A final line ending in a newline was *fully written* -- a
        decode failure there is real corruption, not a partial write,
        and must not silently shrink a resumed campaign."""
        path = str(tmp_path / "results.jsonl")
        good = json.dumps(record_to_json(RunRecord(0, Outcome.BENIGN)))
        with open(path, "w", encoding="utf-8") as f:
            f.write(good + "\n" + '{"v": 1, "run_index": 1, "outc\n')
        with pytest.raises(FFISError, match="undecodable"):
            load_records(path)

    def test_schema_invalid_terminated_final_line_is_an_error(self, tmp_path):
        """Decodable JSON missing required record keys is corrupt too."""
        path = str(tmp_path / "results.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"v": 1, "outcome": "benign"}\n')   # no run_index
        with pytest.raises(FFISError, match="undecodable"):
            load_records(path)

    def test_unterminated_final_line_is_still_forgiven(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        good = json.dumps(record_to_json(RunRecord(0, Outcome.BENIGN)))
        with open(path, "w", encoding="utf-8") as f:
            f.write(good + "\n" + '{"v": 1, "run_index": 1, "outc')
        assert [r.run_index for r in load_records(path)] == [0]

    def test_overwrite_without_resume_is_refused(self, tiny_nyx, bf_config,
                                                 tmp_path):
        """A checkpoint full of paid-for runs must never be silently
        clobbered by a missing --resume flag."""
        path = str(tmp_path / "results.jsonl")
        Campaign(tiny_nyx, bf_config).run(n_runs=4, results_path=path)
        with open(path, "rb") as f:
            before = f.read()
        with pytest.raises(FFISError, match="--resume"):
            Campaign(tiny_nyx, bf_config).run(n_runs=2, results_path=path)
        with open(path, "rb") as f:
            assert f.read() == before
        assert completed_indices(path) == {0, 1, 2, 3}

    def test_empty_file_may_be_started_in_place(self, tiny_nyx, bf_config,
                                                tmp_path):
        path = str(tmp_path / "results.jsonl")
        open(path, "w").close()
        Campaign(tiny_nyx, bf_config).run(n_runs=2, results_path=path)
        assert completed_indices(path) == {0, 1}


class TestStreamingCheckpointReads:
    """The O(1)-in-file-size contract: resuming a campaign never loads
    its checkpoint into memory.  Both binary readers -- the record
    iterator and the partial-tail trim -- must stay bounded, which this
    class enforces by shadowing ``open`` in the sink module with a
    wrapper that rejects unbounded reads."""

    _BOUND = 1 << 16

    @pytest.fixture
    def stream_only(self, monkeypatch):
        import repro.core.engine.sink as sink_mod

        real_open = open
        bound = self._BOUND

        class _StreamOnly:
            def __init__(self, f):
                self._f = f

            def read(self, size=-1):
                assert size is not None and 0 <= size <= bound, \
                    f"unbounded checkpoint read (size={size!r})"
                return self._f.read(size)

            def readlines(self, *args, **kwargs):
                raise AssertionError(
                    "checkpoint must be streamed, not readlines()d")

            def __iter__(self):
                return iter(self._f)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return self._f.__exit__(*exc)

            def __getattr__(self, name):
                return getattr(self._f, name)

        def guarded(path, mode="r", *args, **kwargs):
            f = real_open(path, mode, *args, **kwargs)
            if "b" in mode and str(path).endswith(".jsonl"):
                return _StreamOnly(f)
            return f

        monkeypatch.setattr(sink_mod, "open", guarded, raising=False)

    def test_resume_streams_the_checkpoint(self, tiny_nyx, bf_config,
                                           tmp_path, stream_only):
        path = str(tmp_path / "results.jsonl")
        Campaign(tiny_nyx, bf_config).run(n_runs=3, results_path=path)
        resumed = Campaign(tiny_nyx, bf_config).run(results_path=path,
                                                    resume=True)
        assert len(resumed.records) == 6
        assert completed_indices(path) == set(range(6))

    def test_partial_tail_trim_is_bounded(self, tiny_nyx, bf_config,
                                          tmp_path, stream_only):
        """Appending after a kill trims the partial final line with a
        bounded backwards scan, not a whole-file read."""
        path = str(tmp_path / "results.jsonl")
        Campaign(tiny_nyx, bf_config).run(n_runs=3, results_path=path)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"v": 1, "run_index": 3, "outc')
        resumed = Campaign(tiny_nyx, bf_config).run(results_path=path,
                                                    resume=True)
        assert load_records(path) == resumed.records

    def test_trim_handles_a_tail_longer_than_one_chunk(self, tmp_path):
        """A partial line bigger than the scan chunk still trims back
        to the last real newline."""
        from repro.core.engine.sink import _trim_partial_tail

        path = str(tmp_path / "results.jsonl")
        good = json.dumps(record_to_json(RunRecord(0, Outcome.BENIGN)))
        with open(path, "w", encoding="utf-8") as f:
            f.write(good + "\n" + "x" * 10_000)   # no trailing newline
        _trim_partial_tail(path)
        with open(path, "rb") as f:
            assert f.read() == (good + "\n").encode("utf-8")
        # A file that never saw a newline trims to empty.
        with open(path, "w", encoding="utf-8") as f:
            f.write("y" * 10_000)
        _trim_partial_tail(path)
        assert not open(path, "rb").read()


class TestJsonlSchema:
    def test_schema_is_stable(self):
        record = RunRecord(run_index=3, outcome=Outcome.SDC,
                           target_instance=7, phase="mAdd", detail="d",
                           byte_offset=5, bit_index=2, field_name="f",
                           fault_fired=False)
        assert record_to_json(record) == {
            "v": 1,
            "run_index": 3,
            "outcome": "sdc",
            "target_instance": 7,
            "phase": "mAdd",
            "detail": "d",
            "byte_offset": 5,
            "bit_index": 2,
            "field_name": "f",
            "fault_fired": False,
        }

    def test_round_trip(self):
        record = RunRecord(run_index=1, outcome=Outcome.CRASH,
                           target_instance=4, detail="boom")
        assert record_from_json(record_to_json(record)) == record

    def test_legacy_lines_default_fault_fired(self):
        raw = record_to_json(RunRecord(0, Outcome.BENIGN))
        del raw["fault_fired"]
        assert record_from_json(raw).fault_fired is True

    def test_newer_schema_rejected(self):
        raw = record_to_json(RunRecord(0, Outcome.BENIGN))
        raw["v"] = 99
        with pytest.raises(FFISError):
            record_from_json(raw)


class TestSinksAndStreamedTallies:
    def test_tally_sink_matches_from_records(self, tiny_nyx, bf_config):
        campaign = Campaign(tiny_nyx, bf_config)
        sink = TallySink()
        records = execute_plan(campaign.plan(), sinks=[sink])
        assert sink.tally == OutcomeTally.from_records(records)

    def test_error_bars_accept_streams(self, tiny_nyx, bf_config, tmp_path):
        path = str(tmp_path / "results.jsonl")
        result = Campaign(tiny_nyx, bf_config).run(results_path=path)
        from_tally = campaign_error_bars(result.tally)
        from_records = campaign_error_bars(iter(load_records(path)))
        assert from_tally == from_records
        sink = TallySink()
        for record in result.records:
            sink.emit(record)
        assert campaign_error_bars(sink) == from_tally
        assert as_tally(sink) == result.tally

    def test_jsonl_sink_append_mode(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        first = JsonlSink(path)
        first.emit(RunRecord(0, Outcome.BENIGN))
        first.close()
        second = JsonlSink(path, append=True)
        second.emit(RunRecord(1, Outcome.SDC))
        second.close()
        assert [r.run_index for r in load_records(path)] == [0, 1]


class TestFaultFired:
    def test_never_fired_is_flagged(self, tiny_nyx, tiny_nyx_golden):
        campaign = Campaign(tiny_nyx, CampaignConfig(fault_model="BF",
                                                     n_runs=1))
        # Instance far beyond the run's dynamic writes: the armed hook
        # can never trigger, the run is fault-free.
        record = campaign.run_once(instance=10_000, run_rng_seed=1,
                                   run_index=0, golden=tiny_nyx_golden)
        assert record.fault_fired is False
        assert record.outcome is Outcome.BENIGN
        assert "[warning: fault never fired]" in record.detail

    def test_fired_runs_are_not_flagged(self, tiny_nyx):
        result = Campaign(tiny_nyx, CampaignConfig(fault_model="DW",
                                                   n_runs=3, seed=3)).run()
        assert all(record.fault_fired for record in result.records)
        assert result.tally.not_fired == 0

    def test_tally_counts_not_fired(self):
        records = [RunRecord(0, Outcome.BENIGN, fault_fired=False),
                   RunRecord(1, Outcome.SDC)]
        tally = OutcomeTally.from_records(records)
        assert tally.not_fired == 1
        assert tally.total == 2
        assert "not-fired=1" in str(tally)

    def test_merge_folds_shard_tallies(self):
        a = OutcomeTally.from_records([RunRecord(0, Outcome.SDC)])
        b = OutcomeTally.from_records(
            [RunRecord(1, Outcome.BENIGN, fault_fired=False)])
        a.merge(b)
        assert a.total == 2
        assert a.counts[Outcome.SDC] == 1
        assert a.not_fired == 1

    def test_roundtrips_through_jsonl(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        sink = JsonlSink(path)
        sink.emit(RunRecord(0, Outcome.BENIGN, fault_fired=False))
        sink.close()
        assert load_records(path)[0].fault_fired is False


class TestContextPicklable:
    def test_injection_context_round_trips(self, tiny_nyx, tiny_nyx_golden,
                                           bf_config):
        campaign = Campaign(tiny_nyx, bf_config)
        context = InjectionContext(tiny_nyx, tiny_nyx_golden,
                                   campaign.signature)
        clone = pickle.loads(pickle.dumps(context))
        assert clone.app.name == tiny_nyx.name
        assert clone.signature.primitive == campaign.signature.primitive


class TestCliEngineSurface:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            self.run_cli("--version")
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_campaign_workers_and_out(self, tmp_path):
        path = str(tmp_path / "cli.jsonl")
        code, text = self.run_cli("campaign", "--app", "nyx", "--model", "DW",
                                  "--runs", "4", "--seed", "9",
                                  "--workers", "2", "--out", path)
        assert code == 0
        assert "nyx/DW" in text
        assert len(load_records(path)) == 4

    def test_campaign_resume(self, tmp_path):
        path = str(tmp_path / "cli.jsonl")
        self.run_cli("campaign", "--app", "nyx", "--model", "DW",
                     "--runs", "2", "--seed", "9", "--out", path)
        code, text = self.run_cli("campaign", "--app", "nyx", "--model", "DW",
                                  "--runs", "5", "--seed", "9",
                                  "--out", path, "--resume")
        assert code == 0
        assert sorted(completed_indices(path)) == [0, 1, 2, 3, 4]

    def test_campaign_metadata_mode(self):
        code, text = self.run_cli("campaign", "--app", "nyx",
                                  "--metadata-mode", "random-bit",
                                  "--stride", "512")
        assert code == 0
        assert "nyx/metadata[random-bit]" in text

    def test_model_and_metadata_mode_exclusive(self):
        with pytest.raises(SystemExit):
            self.run_cli("campaign", "--app", "nyx", "--model", "BF",
                         "--metadata-mode", "random-bit")

    def test_model_or_metadata_mode_required(self):
        with pytest.raises(SystemExit):
            self.run_cli("campaign", "--app", "nyx")

    def test_resume_requires_out(self):
        with pytest.raises(SystemExit):
            self.run_cli("campaign", "--app", "nyx", "--model", "BF",
                         "--runs", "2", "--resume")

    def test_inapplicable_flags_rejected(self):
        with pytest.raises(SystemExit):   # --runs is --model-only
            self.run_cli("campaign", "--app", "nyx",
                         "--metadata-mode", "random-bit", "--runs", "50")
        with pytest.raises(SystemExit):   # --phase is --model-only
            self.run_cli("campaign", "--app", "nyx",
                         "--metadata-mode", "random-bit", "--phase", "mAdd")
        with pytest.raises(SystemExit):   # --stride is metadata-only
            self.run_cli("campaign", "--app", "nyx", "--model", "BF",
                         "--runs", "2", "--stride", "4")

    def test_run_accepts_workers(self):
        code, text = self.run_cli("run", "table1", "--workers", "1")
        assert code == 0
        assert "Bitflip" in text
