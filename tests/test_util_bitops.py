"""Unit and property tests for repro.util.bitops."""

import pytest
from hypothesis import given, strategies as st

from repro.util.bitops import (
    deposit_bits,
    extract_bits,
    flip_bit,
    flip_bits,
    flip_consecutive_bits,
    get_bit,
    hamming_distance,
    popcount_bytes,
    set_bit,
)


class TestGetSetFlip:
    def test_get_bit_lsb_first(self):
        assert get_bit(b"\x01", 0) == 1
        assert get_bit(b"\x01", 1) == 0
        assert get_bit(b"\x80", 7) == 1

    def test_get_bit_crosses_bytes(self):
        assert get_bit(b"\x00\x01", 8) == 1
        assert get_bit(b"\x00\x80", 15) == 1

    def test_set_bit_on_off(self):
        assert set_bit(b"\x00", 3, 1) == b"\x08"
        assert set_bit(b"\xff", 3, 0) == b"\xf7"

    def test_set_bit_is_pure(self):
        original = b"\x00"
        set_bit(original, 0, 1)
        assert original == b"\x00"

    def test_flip_bit_involution(self):
        buf = bytes(range(16))
        assert flip_bit(flip_bit(buf, 37), 37) == buf

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            get_bit(b"\x00", 8)
        with pytest.raises(IndexError):
            flip_bit(b"\x00", -1)
        with pytest.raises(IndexError):
            set_bit(b"", 0, 1)

    def test_flip_bits_multiple(self):
        assert flip_bits(b"\x00", [0, 1, 2]) == b"\x07"


class TestConsecutiveFlips:
    def test_flips_exactly_n(self):
        out = flip_consecutive_bits(b"\x00\x00", 6, 4)
        assert popcount_bytes(out) == 4
        assert hamming_distance(out, b"\x00\x00") == 4

    def test_clamps_at_buffer_end(self):
        out = flip_consecutive_bits(b"\x00", 7, 4)
        assert out == b"\x80"

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            flip_consecutive_bits(b"\x00", 0, 0)

    @given(st.binary(min_size=1, max_size=64), st.data())
    def test_double_application_restores(self, buf, data):
        start = data.draw(st.integers(0, 8 * len(buf) - 1))
        n = data.draw(st.integers(1, 8))
        once = flip_consecutive_bits(buf, start, n)
        assert flip_consecutive_bits(once, start, n) == buf

    @given(st.binary(min_size=1, max_size=64), st.data())
    def test_hamming_distance_matches_span(self, buf, data):
        start = data.draw(st.integers(0, 8 * len(buf) - 1))
        n = data.draw(st.integers(1, 8))
        expected = min(n, 8 * len(buf) - start)
        assert hamming_distance(buf, flip_consecutive_bits(buf, start, n)) == expected


class TestFieldOps:
    def test_extract_bits(self):
        assert extract_bits(0b1101_0110, 1, 3) == 0b011
        assert extract_bits(0xFF, 0, 0) == 0

    def test_deposit_bits(self):
        assert deposit_bits(0, 0b101, 2, 3) == 0b10100
        assert deposit_bits(0xFF, 0, 0, 4) == 0xF0

    @given(st.integers(0, 2**64 - 1), st.integers(0, 60), st.integers(0, 4))
    def test_roundtrip(self, value, location, size):
        field = extract_bits(value, location, size)
        assert extract_bits(deposit_bits(value, field, location, size),
                            location, size) == field

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            extract_bits(1, -1, 2)
        with pytest.raises(ValueError):
            deposit_bits(1, 1, 0, -2)


class TestCounting:
    def test_popcount(self):
        assert popcount_bytes(b"\xff\x0f") == 12
        assert popcount_bytes(b"") == 0

    def test_hamming_requires_equal_length(self):
        with pytest.raises(ValueError):
            hamming_distance(b"a", b"ab")
