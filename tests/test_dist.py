"""The distributed engine: leases, the file queue, shard merge, fleets.

The load-bearing contract is **byte identity**: a campaign distributed
over any number of workers -- including workers SIGKILLed mid-lease --
must merge back into a checkpoint byte-identical to ``workers=1``
serial execution.  Everything here triangulates that contract: unit
tests for the lease/queue state machine, a hypothesis property test
that the shard merger deduplicates arbitrary re-execution histories,
and end-to-end fleets (in-process, forked, killed, resumed, CLI-driven)
whole-file compared against serial checkpoints.
"""

import filecmp
import io
import json
import multiprocessing
import os
import signal
import threading
import time
from typing import Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.engine import (
    ProfileGoldenCache,
    RunPlan,
    RunSpec,
    SweepCell,
    SweepPlan,
    execute_sweep,
    iter_stamped_records,
)
from repro.core.engine.dist import (
    Coordinator,
    FileQueue,
    Lease,
    default_lease_runs,
    execute_distributed,
    merge_shards,
    plan_manifest,
    run_worker,
    shard_plan,
    verify_manifest,
    write_merged,
)
from repro.core.engine.sink import JsonlSink
from repro.core.outcomes import Outcome, RunRecord
from repro.errors import FFISError
from repro.study import Study, StudySpec
from repro.study.spec import ModelSpec, TargetSpec

from tests.test_scenario_determinism import ToyApp
from tests.test_study_run import (
    FIGURE7_FIXTURE,
    fixture_montage,
    fixture_nyx,
)


def toy_plan(n_runs=6, seed=7) -> SweepPlan:
    """Two real ToyApp campaigns fused into one sweep."""
    app = ToyApp()
    cache = ProfileGoldenCache()
    cells = []
    for key, model in (("BF", "BF"), ("DW", "DW")):
        campaign = Campaign(app, CampaignConfig(
            fault_model=model, n_runs=n_runs, seed=seed))
        cells.append(campaign.plan_cell(key, cache))
    return SweepPlan(cells=tuple(cells))


def synthetic_plan(sizes: Tuple[int, ...]) -> SweepPlan:
    """Executable-looking plans for queue/merge unit tests (the context
    is never touched there, so ``None`` keeps them cheap)."""
    cells = []
    for i, n in enumerate(sizes):
        key = chr(ord("A") + i)
        cells.append(SweepCell(
            key=key,
            plan=RunPlan(context=None,
                         specs=tuple(RunSpec(run_index=j) for j in range(n))),
            campaign_id=f"camp-{key}"))
    return SweepPlan(cells=tuple(cells))


def synth_record(key: str, index: int) -> RunRecord:
    """Deterministic in ``(cell, run index)``, like real runs."""
    return RunRecord(run_index=index, outcome=Outcome.BENIGN,
                     detail=f"{key}:{index}")


class TestLease:
    def test_shard_plan_cuts_contiguous_ranges_in_plan_order(self):
        plan = synthetic_plan((5, 3))
        leases = shard_plan(plan, 2)
        assert [(le.cell_key, le.start, le.stop) for le in leases] == [
            ("A", 0, 2), ("A", 2, 4), ("A", 4, 5),
            ("B", 0, 2), ("B", 2, 3)]
        assert [le.lease_id for le in leases] == [
            f"lease-{i:05d}" for i in range(5)]
        assert all(le.campaign_id == f"camp-{le.cell_key}" for le in leases)
        assert sum(len(le) for le in leases) == len(plan)

    def test_lease_runs_must_be_positive(self):
        with pytest.raises(FFISError, match="lease_runs"):
            shard_plan(synthetic_plan((3,)), 0)

    def test_empty_range_rejected(self):
        with pytest.raises(FFISError, match="empty or negative"):
            Lease(lease_id="x", cell_key="A", campaign_id=None,
                  start=2, stop=2)

    def test_round_trip_and_reassignment(self):
        lease = Lease(lease_id="lease-00003", cell_key="A",
                      campaign_id="camp-A", start=4, stop=6)
        again = Lease.from_dict(lease.to_dict())
        assert again == lease
        bumped = again.reassigned()
        assert bumped.attempt == 1
        assert (bumped.lease_id, bumped.start, bumped.stop) == \
            (lease.lease_id, lease.start, lease.stop)

    def test_malformed_payload_is_an_error(self):
        with pytest.raises(FFISError, match="malformed lease"):
            Lease.from_dict({"lease_id": "x", "start": 0})

    def test_default_lease_runs_scales_with_fleet(self):
        plan = synthetic_plan((64, 64))
        assert default_lease_runs(plan, workers=2) == 16
        assert default_lease_runs(plan, workers=64) >= 1
        huge = synthetic_plan((100_000,))
        from repro.core.engine.executor import ParallelExecutor

        assert default_lease_runs(huge, workers=2) \
            == ParallelExecutor.MAX_ADAPTIVE_CHUNK_SIZE

    def test_manifest_pins_plan_identity(self):
        plan = synthetic_plan((4, 2))
        manifest = plan_manifest(plan)
        verify_manifest(plan, manifest, where="q")  # no raise
        with pytest.raises(FFISError, match="different plan"):
            verify_manifest(synthetic_plan((4, 3)), manifest, where="q")
        with pytest.raises(FFISError, match="protocol"):
            verify_manifest(plan, {**manifest, "protocol": 99}, where="q")


class TestFileQueue:
    def queue(self, tmp_path, sizes=(4, 2), lease_runs=2):
        plan = synthetic_plan(sizes)
        leases = shard_plan(plan, lease_runs)
        return plan, leases, FileQueue.create(
            str(tmp_path / "q"), plan, leases)

    def test_create_posts_every_lease(self, tmp_path):
        _, leases, queue = self.queue(tmp_path)
        counts = queue.counts()
        assert counts == {"pending": len(leases), "leased": 0, "done": 0,
                          "quarantined": 0, "total": len(leases)}
        assert not queue.all_done() and queue.finished() is False

    def test_root_without_manifest_is_not_a_queue(self, tmp_path):
        with pytest.raises(FFISError, match="not a lease queue"):
            FileQueue(str(tmp_path))

    def test_existing_queue_refused_without_reuse(self, tmp_path):
        plan, leases, _ = self.queue(tmp_path)
        with pytest.raises(FFISError, match="already holds a lease queue"):
            FileQueue.create(str(tmp_path / "q"), plan, leases)

    def test_reuse_refuses_a_different_plan(self, tmp_path):
        _, _, _ = self.queue(tmp_path)
        other = synthetic_plan((9,))
        with pytest.raises(FFISError, match="different plan"):
            FileQueue.create(str(tmp_path / "q"), other,
                             shard_plan(other, 2), reuse=True)

    def test_claims_drain_in_posted_order(self, tmp_path):
        _, leases, queue = self.queue(tmp_path)
        seen = []
        while True:
            claim = queue.claim("w0")
            if claim is None:
                break
            seen.append(claim.lease.lease_id)
            queue.complete(claim)
        assert seen == [lease.lease_id for lease in leases]
        assert queue.all_done() and queue.idle()

    def test_bad_worker_ids_rejected(self, tmp_path):
        _, _, queue = self.queue(tmp_path)
        for bad in ("", "a--b", "a/b", "a b"):
            with pytest.raises(FFISError, match="worker id"):
                queue.claim(bad)

    def test_mismatched_lease_error_names_worker_and_attempt(self, tmp_path):
        """The out-of-range refusal carries worker id, lease id, and
        attempt count -- enough context to start a postmortem from the
        worker's log line alone."""
        plan, leases, queue = self.queue(tmp_path, sizes=(2,), lease_runs=2)
        bad = Lease(lease_id=leases[0].lease_id,
                    cell_key=leases[0].cell_key,
                    campaign_id=leases[0].campaign_id,
                    start=0, stop=999, attempt=3)
        with open(os.path.join(queue.pending_dir, f"{bad.lease_id}.json"),
                  "w", encoding="utf-8") as f:
            json.dump(bad.to_dict(), f)
        with pytest.raises(FFISError) as err:
            run_worker(str(tmp_path / "q"), plan, "w9", max_idle_polls=2)
        message = str(err.value)
        assert "worker w9" in message
        assert bad.lease_id in message
        assert "attempt 3" in message

    def test_malformed_claim_is_quarantined_not_fatal(self, tmp_path):
        """A corrupt lease payload no longer poisons the claim loop: the
        damaged file moves to quarantine/ with a warning and the worker
        claims the next lease instead of crashing."""
        _, leases, queue = self.queue(tmp_path)
        victim = leases[0].lease_id
        with open(os.path.join(queue.pending_dir, f"{victim}.json"),
                  "w", encoding="utf-8") as f:
            f.write("not json {")
        with pytest.warns(UserWarning, match="unparseable"):
            claim = queue.claim("w7")
        assert claim is not None
        assert claim.lease.lease_id == leases[1].lease_id
        assert queue.counts()["quarantined"] == 1
        (diag,) = queue.quarantined()
        assert diag["lease_id"] == victim
        assert "unparseable" in diag["reason"]

    def test_two_workers_race_one_lease(self, tmp_path):
        plan = synthetic_plan((2,))
        leases = shard_plan(plan, 2)
        root = str(tmp_path / "q")
        FileQueue.create(root, plan, leases)
        a, b = FileQueue(root), FileQueue(root)
        first, second = a.claim("wa"), b.claim("wb")
        assert first is not None and second is None
        assert first.lease == leases[0]

    def test_expiry_reassigns_with_attempt_bumped(self, tmp_path):
        _, _, queue = self.queue(tmp_path, sizes=(2,), lease_runs=2)
        claim = queue.claim("dead")
        assert queue.expire_stale(3600.0) == []  # fresh heartbeat
        (requeued,) = queue.expire_stale(0.0, now=time.time() + 10)
        assert requeued.attempt == 1
        again = queue.claim("alive")
        assert again.lease == requeued
        queue.complete(again)
        assert queue.all_done()

    def test_done_file_is_authoritative_over_stale_claims(self, tmp_path):
        """SIGKILL between complete()'s two steps: the done file exists,
        the claim lingers -- expiry must clean up, not re-execute."""
        _, _, queue = self.queue(tmp_path, sizes=(2,), lease_runs=2)
        claim = queue.claim("w0")
        queue.complete(claim)
        # Resurrect the claim file as if the unlink never happened.
        with open(claim.path, "w", encoding="utf-8") as f:
            json.dump(claim.lease.to_dict(), f)
        assert queue.expire_stale(0.0, now=time.time() + 10) == []
        assert queue.counts()["leased"] == 0
        assert queue.all_done()

    def test_claim_skips_and_cleans_completed_leases(self, tmp_path):
        """A completion that raced an expiry re-post leaves a stale
        pending copy; claiming it again would re-execute paid-for
        work."""
        _, leases, queue = self.queue(tmp_path, sizes=(2,), lease_runs=2)
        claim = queue.claim("w0")
        queue.complete(claim)
        queue._post(leases[0])  # the racing re-post
        assert queue.claim("w1") is None
        assert queue.counts()["pending"] == 0

    def test_reuse_requeues_orphans_and_clears_finished(self, tmp_path):
        plan, leases, queue = self.queue(tmp_path, sizes=(4,), lease_runs=2)
        done = queue.claim("w0")
        queue.complete(done)
        queue.claim("w0")          # orphaned: never completed
        queue.mark_finished()
        resumed = FileQueue.create(str(tmp_path / "q"), plan, leases,
                                   reuse=True)
        assert not resumed.finished()
        counts = resumed.counts()
        assert counts["done"] == 1 and counts["leased"] == 0
        assert counts["pending"] == 1
        orphan = resumed.claim("w1")
        assert orphan.lease.attempt == 1


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_merge_dedupes_any_reexecution_history(tmp_path_factory, data):
    """Property: however leases were re-executed and sharded, the merge
    keeps exactly one record per planned ``(campaign, run index)`` pair
    and counts every dropped duplicate."""
    tmp = tmp_path_factory.mktemp("merge")
    sizes = tuple(data.draw(
        st.lists(st.integers(1, 5), min_size=1, max_size=3),
        label="cell sizes"))
    plan = synthetic_plan(sizes)
    pairs = [(cell.key, spec.run_index)
             for cell in plan.cells for spec in cell.plan.specs]
    extras = data.draw(st.lists(st.sampled_from(pairs), max_size=15),
                       label="re-executions")
    events = pairs + extras
    n_shards = data.draw(st.integers(1, 4), label="shards")
    homes = data.draw(st.lists(st.integers(0, n_shards - 1),
                               min_size=len(events), max_size=len(events)),
                      label="shard assignment")
    order = data.draw(st.permutations(range(len(events))), label="order")

    stamps = {cell.key: cell.campaign_id for cell in plan.cells}
    sinks = [JsonlSink(str(tmp / f"shard-w{i}.jsonl"))
             for i in range(n_shards)]
    try:
        for event in order:
            key, index = events[event]
            sinks[homes[event]].emit_stamped(synth_record(key, index),
                                             stamps[key])
    finally:
        for sink in sinks:
            sink.close()

    merged, stats = merge_shards(plan, [sink.path for sink in sinks])
    assert stats.duplicates == len(extras)
    assert stats.total == len(pairs)
    for cell in plan.cells:
        records = merged[cell.key]
        assert [r.run_index for r in records] == \
            [spec.run_index for spec in cell.plan.specs]
        assert records == [synth_record(cell.key, r.run_index)
                           for r in records]


class TestMerge:
    def shards(self, tmp_path, plan, drop=()):
        stamps = {cell.key: cell.campaign_id for cell in plan.cells}
        path = str(tmp_path / "shard-w0.jsonl")
        sink = JsonlSink(path)
        try:
            for cell in plan.cells:
                for spec in cell.plan.specs:
                    if (cell.key, spec.run_index) in drop:
                        continue
                    sink.emit_stamped(synth_record(cell.key, spec.run_index),
                                      stamps[cell.key])
        finally:
            sink.close()
        return [path]

    def test_missing_pair_is_a_hole_not_a_shrunken_campaign(self, tmp_path):
        plan = synthetic_plan((3, 2))
        paths = self.shards(tmp_path, plan, drop={("B", 1)})
        with pytest.raises(FFISError, match="missing 1 planned runs: B:1"):
            merge_shards(plan, paths)

    def test_hole_error_names_the_shards_read(self, tmp_path):
        """Shard filenames carry worker ids; the hole report must list
        them so 'worker never ran' and 'lease lost' are tellable apart."""
        plan = synthetic_plan((3, 2))
        paths = self.shards(tmp_path, plan, drop={("B", 1)})
        with pytest.raises(FFISError) as err:
            merge_shards(plan, paths)
        message = str(err.value)
        assert "shards read:" in message
        assert os.path.basename(paths[0]) in message

    def test_stray_campaign_stamp_refused(self, tmp_path):
        plan = synthetic_plan((2,))
        paths = self.shards(tmp_path, plan)
        sink = JsonlSink(paths[0], append=True)
        try:
            sink.emit_stamped(synth_record("Z", 0), "camp-Z")
        finally:
            sink.close()
        with pytest.raises(FFISError, match="unrelated science"):
            merge_shards(plan, paths)

    def test_multicell_shards_need_stamps(self, tmp_path):
        plan = SweepPlan(cells=(
            SweepCell(key="A", plan=RunPlan(context=None,
                                            specs=(RunSpec(run_index=0),))),
            SweepCell(key="B", plan=RunPlan(context=None,
                                            specs=(RunSpec(run_index=0),)),
                      campaign_id="camp-B")))
        with pytest.raises(FFISError, match="no campaign_id"):
            merge_shards(plan, [])

    def test_write_merged_refuses_a_populated_target(self, tmp_path):
        plan = synthetic_plan((2,))
        paths = self.shards(tmp_path, plan)
        target = tmp_path / "out.jsonl"
        target.write_text("occupied\n", encoding="utf-8")
        with pytest.raises(FFISError, match="already contains results"):
            write_merged(plan, paths, str(target))
        assert target.read_text(encoding="utf-8") == "occupied\n"
        write_merged(plan, paths, str(target), overwrite=True)
        assert target.read_text(encoding="utf-8") != "occupied\n"


class TestDistributedByteIdentity:
    """The tentpole contract, end to end on real ToyApp campaigns."""

    def serial(self, tmp_path, plan):
        path = str(tmp_path / "serial.jsonl")
        result = execute_sweep(plan, results_path=path)
        return path, result

    def test_in_process_worker_matches_serial(self, tmp_path):
        plan = toy_plan()
        serial_path, serial = self.serial(tmp_path, plan)
        root = str(tmp_path / "queue")
        coordinator = Coordinator(plan, root, lease_runs=2)
        coordinator.post()
        stats = run_worker(root, plan, "solo", max_idle_polls=3)
        assert stats.runs == len(plan) and stats.retries == 0
        dist_path = str(tmp_path / "dist.jsonl")
        merged, merge_stats = coordinator.finish(results_path=dist_path)
        assert filecmp.cmp(serial_path, dist_path, shallow=False)
        assert merged == serial.records
        assert merge_stats.duplicates == 0
        assert merge_stats.total == len(plan)

    def test_forked_fleet_matches_serial(self, tmp_path):
        plan = toy_plan()
        serial_path, serial = self.serial(tmp_path, plan)
        dist_path = str(tmp_path / "dist.jsonl")
        result = execute_distributed(
            plan, str(tmp_path / "queue"), workers=2, lease_runs=2,
            results_path=dist_path, timeout=120.0)
        assert filecmp.cmp(serial_path, dist_path, shallow=False)
        assert result.records == serial.records
        assert result.executed == len(plan)

    def test_distributed_refuses_to_clobber_results(self, tmp_path):
        plan = toy_plan(n_runs=2)
        occupied = tmp_path / "dist.jsonl"
        occupied.write_text("occupied\n", encoding="utf-8")
        with pytest.raises(FFISError, match="--resume"):
            execute_distributed(plan, str(tmp_path / "queue"),
                                results_path=str(occupied))
        assert occupied.read_text(encoding="utf-8") == "occupied\n"

    def test_resume_settled_queue_executes_nothing(self, tmp_path):
        plan = toy_plan()
        serial_path, _ = self.serial(tmp_path, plan)
        root = str(tmp_path / "queue")
        coordinator = Coordinator(plan, root, lease_runs=2)
        coordinator.post()
        run_worker(root, plan, "first", max_idle_polls=3)
        # Coordinator "crashed" before finish(); a resumed campaign
        # finds every lease settled and merges without re-executing.
        dist_path = str(tmp_path / "dist.jsonl")
        result = execute_distributed(plan, root, workers=2, lease_runs=2,
                                     results_path=dist_path, resume=True,
                                     timeout=120.0)
        assert filecmp.cmp(serial_path, dist_path, shallow=False)
        assert result.executed == len(plan)


class SlowToy(ToyApp):
    """ToyApp with a classify() slow enough to SIGKILL mid-lease.

    ``classify`` runs for every injected run and is never replay-
    skipped, so the sleep guarantees a kill window without changing a
    single record byte."""

    def classify(self, golden, mp):
        time.sleep(0.2)
        return super().classify(golden, mp)


def slow_plan(n_runs=4, seed=7) -> SweepPlan:
    app = SlowToy()
    cache = ProfileGoldenCache()
    cells = []
    for key, model in (("BF", "BF"), ("DW", "DW")):
        campaign = Campaign(app, CampaignConfig(
            fault_model=model, n_runs=n_runs, seed=seed))
        cells.append(campaign.plan_cell(key, cache))
    return SweepPlan(cells=tuple(cells))


class TestWorkerDeath:
    def test_sigkill_mid_lease_loses_and_duplicates_nothing(self, tmp_path):
        """The ISSUE's acceptance scenario: SIGKILL a worker mid-lease,
        expire its claim, drain with a peer, and the merged checkpoint
        is byte-identical to serial -- every pair exactly once."""
        plan = slow_plan()
        serial_path = str(tmp_path / "serial.jsonl")
        execute_sweep(plan, results_path=serial_path)

        root = str(tmp_path / "queue")
        coordinator = Coordinator(plan, root, lease_runs=2, lease_ttl=1000.0)
        queue = coordinator.post()
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=run_worker, args=(root, plan, "wa"),
                           kwargs={"poll_interval": 0.02})
        proc.start()

        def published_by_wa():
            try:
                names = os.listdir(queue.shards_dir)
            except FileNotFoundError:
                return []
            return [n for n in names
                    if n.endswith(".jsonl") and "--wa" in n]

        deadline = time.time() + 60
        while time.time() < deadline:
            if published_by_wa():
                break
            time.sleep(0.01)
        assert published_by_wa(), "worker wa never published a segment"
        os.kill(proc.pid, signal.SIGKILL)
        proc.join()

        wa_lines = 0
        for name in published_by_wa():
            with open(os.path.join(queue.shards_dir, name), "rb") as f:
                wa_lines += f.read().count(b"\n")

        leased_before = queue.counts()["leased"]
        requeued = queue.expire_stale(0.0, now=time.time() + 10)
        if leased_before:
            assert requeued, "the dead worker's claim was not reassigned"

        stats = run_worker(root, plan, "wb", poll_interval=0.01,
                           max_idle_polls=50)
        assert stats.runs >= len(plan) - wa_lines
        dist_path = str(tmp_path / "dist.jsonl")
        merged, merge_stats = coordinator.finish(results_path=dist_path)
        assert filecmp.cmp(serial_path, dist_path, shallow=False)
        # Zero lost: byte identity already proves it.  Zero duplicated:
        # segments publish atomically per completed lease, so the dead
        # worker's in-flight tmp segment never enters the merge and the
        # leases partition the plan disjointly.
        assert merge_stats.duplicates == 0
        pairs = [(stamp, record.run_index)
                 for _, stamp, record in iter_stamped_records(dist_path)]
        assert len(pairs) == len(set(pairs)) == len(plan)

    def test_supervisor_respawns_killed_workers(self, tmp_path):
        """execute_distributed survives losing a worker mid-campaign:
        the supervisor respawns, expiry reassigns, bytes still match."""
        plan = slow_plan(n_runs=3)
        serial_path = str(tmp_path / "serial.jsonl")
        execute_sweep(plan, results_path=serial_path)
        root = str(tmp_path / "queue")
        killer = threading.Thread(
            target=_kill_one_worker_once, args=(root,), daemon=True)
        killer.start()
        dist_path = str(tmp_path / "dist.jsonl")
        result = execute_distributed(
            plan, root, workers=2, lease_runs=2, lease_ttl=1.0,
            results_path=dist_path, poll_interval=0.02, timeout=120.0)
        killer.join(timeout=60)
        assert filecmp.cmp(serial_path, dist_path, shallow=False)
        assert result.executed == len(plan)


def _kill_one_worker_once(root: str) -> None:
    """Wait until some worker has written a shard line, then SIGKILL
    one live worker process.  Every child of the test process during
    ``execute_distributed`` is a campaign worker, so any live child is
    a valid victim -- the supervisor must respawn it and expiry must
    reassign whatever it held."""
    deadline = time.time() + 60
    shards = os.path.join(root, "shards")
    while time.time() < deadline:
        try:
            if any(os.path.getsize(os.path.join(shards, name))
                   for name in os.listdir(shards)):
                break
        except OSError:
            pass
        time.sleep(0.01)
    else:
        return
    for proc in multiprocessing.active_children():
        if proc.is_alive() and proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
            return


class TestStudyDistributed:
    def toy_spec(self, **knobs) -> StudySpec:
        return StudySpec(
            name="dist-toy",
            targets=(TargetSpec(app="TOY", label="TOY"),
                     TargetSpec(app="ALT", label="ALT")),
            models=(ModelSpec(model="BF"), ModelSpec(model="DW")),
            runs=3, seed=6, **knobs)

    def apps(self):
        return {"TOY": ToyApp(), "ALT": ToyApp(payload_seed=9)}

    def test_hosts_knob_matches_serial_checkpoint(self, tmp_path):
        serial_path = str(tmp_path / "serial.jsonl")
        dist_path = str(tmp_path / "dist.jsonl")
        serial = Study(self.toy_spec(), apps=self.apps()) \
            .run(results_path=serial_path)
        dist = Study(self.toy_spec(), apps=self.apps()) \
            .run(hosts=2, results_path=dist_path,
                 queue_root=str(tmp_path / "queue"))
        assert filecmp.cmp(serial_path, dist_path, shallow=False)
        assert dist.keys() == serial.keys()
        for key in serial.keys():
            assert dist.cell(key) == serial.cell(key)
        assert dist.executed == len(dist)

    def test_resume_without_queue_root_is_an_error(self, tmp_path):
        plan = Study(self.toy_spec(), apps=self.apps()).plan()
        from repro.study import run_distributed

        with pytest.raises(FFISError, match="queue_root"):
            run_distributed(plan, hosts=2, resume=True)

    def test_figure7_distributed_matches_serial_fixture(self, tmp_path):
        """The ISSUE's acceptance criterion: a 2-worker distributed
        figure7 run is byte-identical to the committed serial fixture."""
        from repro.study.registry import figure7_spec

        spec = figure7_spec(n_runs=2, seed=4, app_labels=("NYX", "MT"))
        plan = Study(spec, apps={"nyx": fixture_nyx(),
                                 "montage": fixture_montage()}).plan()
        path = str(tmp_path / "figure7-dist.jsonl")
        plan.execute(hosts=2, results_path=path,
                     queue_root=str(tmp_path / "queue"))
        assert filecmp.cmp(FIGURE7_FIXTURE, path, shallow=False)


class TestServeAndWorkerCli:
    """The cross-host surface: `repro study serve` + `repro worker`."""

    @pytest.fixture
    def toy_registry(self, monkeypatch):
        import repro.study.apps as study_apps

        monkeypatch.setitem(study_apps._FACTORIES, "toy", ToyApp)

    def spec_file(self, tmp_path) -> str:
        spec = StudySpec(
            name="cli-dist",
            targets=(TargetSpec(app="toy", label="TOY"),),
            models=(ModelSpec(model="BF"), ModelSpec(model="DW")),
            runs=3, seed=5)
        path = tmp_path / "cli-dist.toml"
        path.write_text(spec.to_toml(), encoding="utf-8")
        return str(path)

    def test_serve_then_worker_round_trip(self, tmp_path, toy_registry):
        spec_path = self.spec_file(tmp_path)
        serial_path = str(tmp_path / "serial.jsonl")
        from repro.study.spec import load_spec

        Study(load_spec(spec_path)).run(results_path=serial_path)

        queue_root = str(tmp_path / "queue")
        out_path = str(tmp_path / "dist.jsonl")
        serve_out = io.StringIO()
        serve_rc = []

        def _serve():
            serve_rc.append(main(
                ["study", "serve", "--file", spec_path, "--queue",
                 queue_root, "--out", out_path, "--timeout", "120",
                 "--lease-runs", "2"], out=serve_out))

        coordinator = threading.Thread(target=_serve)
        coordinator.start()
        deadline = time.time() + 60
        manifest = os.path.join(queue_root, "manifest.json")
        while time.time() < deadline and not os.path.exists(manifest):
            time.sleep(0.02)
        assert os.path.exists(manifest), "serve never posted the queue"

        worker_out = io.StringIO()
        worker_rc = main(["worker", "--queue", queue_root, "--file",
                          spec_path, "--id", "host-a", "--poll", "0.02"],
                         out=worker_out)
        coordinator.join(timeout=120)
        assert not coordinator.is_alive()
        assert worker_rc == 0 and serve_rc == [0]
        assert "worker host-a: " in worker_out.getvalue()
        text = serve_out.getvalue()
        assert f"serving 6 runs at {queue_root}" in text
        assert "TOY-BF" in text and "TOY-DW" in text
        assert filecmp.cmp(serial_path, out_path, shallow=False)

    def test_worker_refuses_a_mismatched_study(self, tmp_path, toy_registry):
        spec_path = self.spec_file(tmp_path)
        from repro.study.spec import load_spec

        plan = Study(load_spec(spec_path)).plan()
        queue_root = str(tmp_path / "queue")
        Coordinator(plan.sweep, queue_root, lease_runs=2).post()
        wrong = StudySpec(
            name="cli-dist",
            targets=(TargetSpec(app="toy", label="TOY"),),
            models=(ModelSpec(model="BF"), ModelSpec(model="DW")),
            runs=4, seed=5)  # one extra run per cell
        wrong_path = tmp_path / "wrong.toml"
        wrong_path.write_text(wrong.to_toml(), encoding="utf-8")
        with pytest.raises(FFISError, match="different plan"):
            main(["worker", "--queue", queue_root, "--file",
                  str(wrong_path), "--id", "host-b",
                  "--max-idle-polls", "1"], out=io.StringIO())
