"""Tests for the Nyx density field generator and the component labeler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import ndimage

from repro.apps.nyx.field import FieldConfig, generate_baryon_density
from repro.apps.nyx.labeling import DisjointSet, label_components


class TestField:
    CONFIG = FieldConfig(shape=(24, 24, 24))

    def test_mean_is_exactly_one_in_storage_dtype(self):
        rho = generate_baryon_density(self.CONFIG, seed=5)
        assert rho.dtype == np.float32
        assert abs(float(rho.mean(dtype=np.float64)) - 1.0) < 1e-6

    def test_deterministic(self):
        a = generate_baryon_density(self.CONFIG, seed=5)
        b = generate_baryon_density(self.CONFIG, seed=5)
        assert np.array_equal(a, b)

    def test_seed_sensitivity(self):
        a = generate_baryon_density(self.CONFIG, seed=5)
        b = generate_baryon_density(self.CONFIG, seed=6)
        assert not np.array_equal(a, b)

    def test_positive(self):
        rho = generate_baryon_density(self.CONFIG, seed=5)
        assert (rho > 0).all()

    def test_has_halo_overdensities(self):
        rho = generate_baryon_density(FieldConfig(), seed=2021)
        assert rho.max() > 81.66  # candidates exist at the paper threshold

    def test_halo_count_scales(self):
        few = FieldConfig(shape=(32, 32, 32), n_halos=2)
        many = FieldConfig(shape=(32, 32, 32), n_halos=12)
        rho_few = generate_baryon_density(few, seed=3)
        rho_many = generate_baryon_density(many, seed=3)
        thr = 50.0
        assert (rho_many > thr).sum() > (rho_few > thr).sum()


class TestDisjointSet:
    def test_union_find(self):
        dsu = DisjointSet(5)
        dsu.union(0, 1)
        dsu.union(3, 4)
        assert dsu.find(1) == dsu.find(0)
        assert dsu.find(3) == dsu.find(4)
        assert dsu.find(0) != dsu.find(3)

    def test_roots_resolves_chains(self):
        dsu = DisjointSet(4)
        dsu.union(0, 1)
        dsu.union(1, 2)
        dsu.union(2, 3)
        assert len(set(dsu.roots().tolist())) == 1


class TestLabeling:
    def test_empty_mask(self):
        labels, n = label_components(np.zeros((3, 3, 3), dtype=bool))
        assert n == 0 and labels.sum() == 0

    def test_single_voxel(self):
        mask = np.zeros((3, 3, 3), dtype=bool)
        mask[1, 1, 1] = True
        labels, n = label_components(mask)
        assert n == 1 and labels[1, 1, 1] == 1

    def test_diagonal_not_connected(self):
        mask = np.zeros((2, 2, 2), dtype=bool)
        mask[0, 0, 0] = mask[1, 1, 1] = True
        _, n = label_components(mask)
        assert n == 2

    def test_face_connected(self):
        mask = np.zeros((3, 3, 3), dtype=bool)
        mask[0, 0, 0] = mask[0, 0, 1] = mask[0, 1, 1] = True
        _, n = label_components(mask)
        assert n == 1

    def test_periodic_wrap(self):
        mask = np.zeros((4, 1, 1), dtype=bool)
        mask[0] = mask[3] = True
        _, n_open = label_components(mask, periodic=False)
        _, n_wrap = label_components(mask, periodic=True)
        assert n_open == 2 and n_wrap == 1

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            label_components(np.zeros((2, 2), dtype=bool))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.floats(0.05, 0.5))
    def test_matches_scipy_reference(self, seed, density):
        """Property: identical component structure to scipy.ndimage.label
        with the 6-connectivity structuring element."""
        rng = np.random.default_rng(seed)
        mask = rng.random((6, 6, 6)) < density
        ours, n_ours = label_components(mask)
        structure = ndimage.generate_binary_structure(3, 1)
        theirs, n_theirs = ndimage.label(mask, structure=structure)
        assert n_ours == n_theirs
        if n_ours:
            # Label numbering may differ; compare the partition itself.
            pairs = set(zip(ours[mask].tolist(), theirs[mask].tolist()))
            assert len(pairs) == n_ours  # bijection between label sets
