"""The ``repro study`` subcommand and the lazy experiment registry."""

import io
import subprocess
import sys

import pytest

from repro.cli import main
from repro.core.engine import load_records_by_campaign
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.study import StudySpec


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestLazyRegistry:
    def test_registry_import_does_not_import_drivers(self):
        """The satellite contract: listing experiments (or `repro
        --version`) must not pay the ten-driver import cost."""
        code = (
            "import sys\n"
            "import repro.cli\n"
            "from repro.experiments.registry import EXPERIMENTS\n"
            "assert len(EXPERIMENTS) == 10\n"
            "heavy = [m for m in sys.modules if m in ("
            "'repro.experiments.figure7', 'repro.experiments.table3', "
            "'repro.experiments.multifault', 'numpy')]\n"
            "assert not heavy, heavy\n")
        subprocess.run([sys.executable, "-c", code], check=True,
                       env={"PYTHONPATH": "src"}, cwd=".")

    def test_driver_resolves_lazily(self):
        from repro.experiments.multifault import run_multifault

        exp = EXPERIMENTS["multifault"]
        assert exp.resolve() is run_multifault
        assert exp.driver is run_multifault

    def test_every_registered_driver_resolves(self):
        for exp in EXPERIMENTS.values():
            assert callable(exp.resolve()), exp.id

    def test_knob_declarations(self):
        assert get_experiment("figure7").accepts("results_path")
        assert get_experiment("table3").accepts("resume")
        assert not get_experiment("table1").accepts("results_path")
        for exp in EXPERIMENTS.values():
            assert exp.accepts("workers")

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("table99")


class TestStudyCli:
    def test_list_names_registered_studies(self):
        code, text = run_cli("study", "list")
        assert code == 0
        for study_id in ("figure7", "multifault", "table3", "table4"):
            assert study_id in text

    def test_describe_registered_study_round_trips(self):
        code, text = run_cli("study", "describe", "multifault")
        assert code == 0
        spec = StudySpec.from_toml(text)
        assert spec.name == "multifault"
        assert [t.label for t in spec.targets] == ["NYX", "QMC", "MT"]

    def test_plan_lists_cells_without_executing(self):
        code, text = run_cli("study", "plan", "figure7")
        assert code == 0
        assert "NYX-BF" in text and "MT4-DW" in text
        assert "REPRO_FI_RUNS" in text  # runs deferred to the env knob

    def test_plan_inline_axes(self):
        code, text = run_cli("study", "plan", "--app", "nyx",
                             "--model", "BF", "--model", "DW",
                             "--scenario", "k=2", "--runs", "5")
        assert code == 0
        assert "nyx-BF-k=2" in text and "nyx-DW-k=2" in text

    def test_run_from_toml_file(self, tmp_path):
        spec_path = tmp_path / "study.toml"
        spec_path.write_text(
            'name = "file-study"\n'
            "runs = 2\n"
            "seed = 3\n"
            "\n"
            "[[targets]]\n"
            'app = "nyx-small"\n'
            'kind = "metadata"\n'
            "stride = 256\n",
            encoding="utf-8")
        out_path = str(tmp_path / "results.jsonl")
        code, text = run_cli("study", "run", "--file", str(spec_path),
                             "--out", out_path)
        assert code == 0
        assert "study:" in text and "1 cells" in text
        assert len(load_records_by_campaign(out_path)) == 1

    @pytest.fixture
    def tiny_app_registry(self, monkeypatch):
        """Rebind the stock app ids to tiny workloads so registered
        studies run at test scale through the real CLI path."""
        import repro.study.apps as study_apps
        from repro.apps.nyx import FieldConfig, NyxApplication
        from tests.test_study_run import fixture_montage, fixture_nyx

        def other_nyx():
            return NyxApplication(seed=78, field_config=FieldConfig(
                shape=(16, 16, 16), n_halos=2,
                halo_amplitude=(800.0, 1500.0),
                halo_radius=(0.6, 0.8)), min_cells=3)

        monkeypatch.setitem(study_apps._FACTORIES, "nyx", fixture_nyx)
        monkeypatch.setitem(study_apps._FACTORIES, "qmcpack", other_nyx)
        monkeypatch.setitem(study_apps._FACTORIES, "montage", fixture_montage)
        monkeypatch.setenv("REPRO_FI_RUNS", "2")

    def test_run_registered_study_renders_report(self, tiny_app_registry):
        code, text = run_cli("study", "run", "figure7")
        assert code == 0
        assert "Figure 7: I/O fault characterization" in text
        assert "NYX-BF" in text and "MT4-DW" in text
        assert "study:" in text

    def test_requires_exactly_one_source(self):
        with pytest.raises(SystemExit):
            run_cli("study", "run")
        with pytest.raises(SystemExit):
            run_cli("study", "run", "figure7", "--file", "x.toml")

    def test_unknown_study_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("study", "run", "figure99")

    def test_axis_flags_rejected_for_named_or_file_studies(self, tmp_path):
        """--model/--scenario/--phase shape inline specs only; silently
        ignoring them against a registered study would misreport the
        grid actually run."""
        with pytest.raises(SystemExit):
            run_cli("study", "run", "figure7", "--model", "BF")
        with pytest.raises(SystemExit):
            run_cli("study", "plan", "multifault", "--scenario", "k=2")
        spec_path = tmp_path / "s.toml"
        spec_path.write_text('name = "x"\n\n[[targets]]\napp = "nyx"\n',
                             encoding="utf-8")
        with pytest.raises(SystemExit):
            run_cli("study", "plan", "--file", str(spec_path),
                    "--phase", "mAdd")

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("study", "plan", "--app", "nyx", "--model", "BF",
                    "--scenario", "nonsense=4")

    def test_resume_requires_out(self):
        with pytest.raises(SystemExit):
            run_cli("study", "run", "figure7", "--resume")

    def test_runs_rejected_for_metadata_only_studies(self):
        """A metadata sweep's size is bytes/stride; --runs would be
        silently ignored, so it is refused instead."""
        with pytest.raises(SystemExit):
            run_cli("study", "plan", "table3", "--runs", "5")
        with pytest.raises(SystemExit):
            run_cli("study", "run", "table4", "--runs", "5")

    def test_run_with_out_resume_round_trip(self, tmp_path):
        spec_path = tmp_path / "study.toml"
        spec_path.write_text(
            'name = "resume-study"\n\n'
            "[[targets]]\n"
            'app = "nyx-small"\n'
            'kind = "metadata"\n'
            "stride = 256\n",
            encoding="utf-8")
        out_path = str(tmp_path / "meta.jsonl")
        code, _ = run_cli("study", "run", "--file", str(spec_path),
                          "--out", out_path)
        assert code == 0
        code, text = run_cli("study", "run", "--file", str(spec_path),
                             "--out", out_path, "--resume")
        assert code == 0
        assert "(0 executed" in text


class TestRebasedSubcommands:
    """campaign/sweep/run share the Study path and its knob contract."""

    def test_campaign_scenario_still_works(self):
        code, text = run_cli("campaign", "--app", "nyx", "--model", "DW",
                             "--runs", "3", "--seed", "2",
                             "--scenario", "k=2")
        assert code == 0
        assert "nyx/DW" in text and "<k=2>" in text

    def test_campaign_metadata_mode(self, tmp_path):
        out_path = str(tmp_path / "meta.jsonl")
        code, text = run_cli("campaign", "--app", "nyx-small",
                             "--metadata-mode", "random-bit",
                             "--stride", "256", "--out", out_path)
        assert code == 0
        assert "metadata[random-bit]" in text
        assert len(load_records_by_campaign(out_path)) == 1

    def test_run_out_rejected_for_knobless_driver(self):
        with pytest.raises(SystemExit):
            run_cli("run", "table4", "--out", "x.jsonl")
