"""Tests for the storage backends (memory + directory)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fusefs.backend import DirectoryBackend, MemoryBackend


@pytest.fixture(params=["memory", "directory"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return DirectoryBackend(str(tmp_path / "store"))


class TestBasicOps:
    def test_create_read_write(self, backend):
        backend.create(1)
        assert backend.pwrite(1, b"hello", 0) == 5
        assert backend.pread(1, 5, 0) == b"hello"
        assert backend.size(1) == 5

    def test_create_is_idempotent(self, backend):
        backend.create(1)
        backend.pwrite(1, b"x", 0)
        backend.create(1)
        assert backend.pread(1, 1, 0) == b"x"

    def test_write_beyond_eof_zero_fills(self, backend):
        backend.create(1)
        backend.pwrite(1, b"ab", 10)
        assert backend.size(1) == 12
        assert backend.pread(1, 12, 0) == b"\x00" * 10 + b"ab"

    def test_overwrite_middle(self, backend):
        backend.create(1)
        backend.pwrite(1, b"abcdef", 0)
        backend.pwrite(1, b"XY", 2)
        assert backend.pread(1, 6, 0) == b"abXYef"

    def test_short_read_at_eof(self, backend):
        backend.create(1)
        backend.pwrite(1, b"abc", 0)
        assert backend.pread(1, 100, 1) == b"bc"
        assert backend.pread(1, 10, 50) == b""

    def test_truncate_shrink_and_grow(self, backend):
        backend.create(1)
        backend.pwrite(1, b"abcdef", 0)
        backend.truncate(1, 2)
        assert backend.pread(1, 10, 0) == b"ab"
        backend.truncate(1, 4)
        assert backend.pread(1, 10, 0) == b"ab\x00\x00"

    def test_delete(self, backend):
        backend.create(1)
        backend.delete(1)
        with pytest.raises(KeyError):
            backend.size(1)
        backend.delete(1)  # idempotent

    def test_missing_extent_raises(self, backend):
        with pytest.raises(KeyError):
            backend.pread(42, 1, 0)
        with pytest.raises(KeyError):
            backend.pwrite(42, b"x", 0)

    def test_negative_args_rejected(self, backend):
        backend.create(1)
        with pytest.raises(ValueError):
            backend.pread(1, -1, 0)
        with pytest.raises(ValueError):
            backend.pwrite(1, b"x", -1)
        with pytest.raises(ValueError):
            backend.truncate(1, -1)

    def test_clear(self, backend):
        backend.create(1)
        backend.create(2)
        backend.clear()
        with pytest.raises(KeyError):
            backend.size(1)

    def test_independent_inodes(self, backend):
        backend.create(1)
        backend.create(2)
        backend.pwrite(1, b"one", 0)
        backend.pwrite(2, b"two", 0)
        assert backend.pread(1, 3, 0) == b"one"
        assert backend.pread(2, 3, 0) == b"two"


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(
    st.tuples(st.binary(min_size=1, max_size=64), st.integers(0, 128)),
    min_size=1, max_size=12))
def test_memory_backend_matches_reference_model(ops):
    """Property: the backend behaves like a plain bytearray with holes."""
    backend = MemoryBackend()
    backend.create(1)
    model = bytearray()
    for data, offset in ops:
        backend.pwrite(1, data, offset)
        end = offset + len(data)
        if len(model) < end:
            model.extend(b"\x00" * (end - len(model)))
        model[offset:end] = data
    assert backend.pread(1, len(model) + 16, 0) == bytes(model)
    assert backend.size(1) == len(model)
