"""Fast-lane smoke tests for the migrated Study-API examples.

The examples double as documentation; running them (at a tiny scale)
keeps their imports and the public surface they demonstrate honest.
"""

import importlib.util
import os


EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def load_example(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickstart:
    def test_runs_at_tiny_scale(self, capsys):
        quickstart = load_example("quickstart")
        quickstart.main(n_runs=3, shape=(16, 16, 16))
        text = capsys.readouterr().out
        assert "Nyx under storage faults (3 injections per model)" in text
        for key in ("nyx-BF", "nyx-SW", "nyx-DW"):
            assert key in text
        # The fused study pays one golden capture for all models.
        assert "1 shared fault-free runs" in text


class TestMontageStageStudy:
    def test_grid_spec_is_the_paper_grid(self):
        example = load_example("montage_stage_study")
        spec = example.stage_grid_spec(n_runs=2)
        keys = [cell.key for cell in spec.cells()]
        assert keys[:4] == ["MT1-BF", "MT2-BF", "MT3-BF", "MT4-BF"]
        assert len(keys) == 12

    def test_runs_at_tiny_scale(self, capsys):
        from repro.apps.montage import MontageApplication, SkyConfig

        example = load_example("montage_stage_study")
        app = MontageApplication(seed=11, sky_config=SkyConfig(
            canvas_shape=(64, 64), tile_shape=(32, 32),
            n_tiles=6, n_stars=40))
        example.main(n_runs=2, app=app)
        text = capsys.readouterr().out
        assert "fault-free pipeline" in text
        assert "12 cells fused" in text
        assert "MT4-DW" in text
        # All 12 cells share one golden capture (profile derived from it).
        assert "1 shared fault-free runs" in text
