"""The prefix-replay machinery: snapshots, CoW isolation, binning, splice.

Record-level equivalence between replayed and cold execution lives in
``test_replay_determinism.py`` (the CI guard); this module tests the
mechanisms -- file-system snapshot/restore edge cases, the zero-copy
write path's immutability guarantee, restore-point binning, and the
fault-point-aware suffix fast-forward.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.apps.base import GoldenRecord, HpcApplication, RunStep
from repro.core.campaign import Campaign, InjectionContext
from repro.core.config import CampaignConfig
from repro.core.engine import RunSpec, execute_run_spec
from repro.core.engine.replay import ReplayConstraint, choose_boundary
from repro.core.outcomes import Outcome
from repro.fusefs.mount import MountPoint, mount
from repro.fusefs.vfs import FFISFileSystem, FsImage


def _fresh_mounted():
    fs = FFISFileSystem()
    fs._set_mounted(True)
    return fs


class TestSnapshotRestore:
    """FFISFileSystem.snapshot()/restore() edge cases."""

    def _snapshot_of(self, build) -> Tuple[FFISFileSystem, FsImage]:
        fs = _fresh_mounted()
        build(MountPoint(fs))
        return fs, fs.snapshot()

    def test_roundtrip_restores_files_and_counters(self):
        fs, image = self._snapshot_of(lambda mp: (
            mp.mkdir("/d"), mp.write_file("/d/a", b"alpha"),
            mp.write_file("/d/b", b"beta")))
        target = _fresh_mounted()
        target.restore(image)
        # Counters continue where the snapshot left off (checked before
        # any further I/O advances them).
        assert target.interposer.count("ffis_write") == \
            fs.interposer.count("ffis_write")
        assert target.interposer.count("ffis_open") == \
            fs.interposer.count("ffis_open")
        mp = MountPoint(target)
        assert mp.read_file("/d/a") == b"alpha"
        assert mp.read_file("/d/b") == b"beta"
        assert mp.listdir("/d") == ["a", "b"]

    def test_mutations_after_snapshot_do_not_leak_into_it(self):
        fs, image = self._snapshot_of(
            lambda mp: mp.write_file("/keep", b"original"))
        mp = MountPoint(fs)
        # Every mutating operation the apps use, after the snapshot.
        mp.write_file("/keep", b"rewritten")
        mp.write_file("/new", b"created-later")
        mp.truncate("/keep", 2)
        mp.rename("/keep", "/kept")
        mp.remove("/new")
        with mp.open("/hole", "w") as f:
            f.pwrite(b"x", 100)          # hole-creating pwrite

        target = _fresh_mounted()
        target.restore(image)
        tmp = MountPoint(target)
        assert tmp.read_file("/keep") == b"original"
        assert not tmp.exists("/kept")
        assert not tmp.exists("/new")
        assert not tmp.exists("/hole")
        assert tmp.listdir("/") == ["keep"]

    def test_restore_then_mutate_is_isolated(self):
        """No aliasing: a restored fs's writes must never reach the
        snapshot or other file systems restored from it."""
        _, image = self._snapshot_of(
            lambda mp: mp.write_file("/shared", b"golden-bytes"))
        first = _fresh_mounted()
        first.restore(image)
        MountPoint(first).write_file("/shared", b"corrupted!!!")
        MountPoint(first).truncate("/shared", 4)

        second = _fresh_mounted()
        second.restore(image)
        assert MountPoint(second).read_file("/shared") == b"golden-bytes"
        # And in-place byte surgery through the backend materializes a
        # private copy too (the at-rest decay path).
        node = second.inodes.lookup("/shared")
        second.backend.pwrite(node.ino, b"X", 0)
        third = _fresh_mounted()
        third.restore(image)
        assert MountPoint(third).read_file("/shared") == b"golden-bytes"

    def test_hole_pwrite_between_snapshots_restores_each_state(self):
        fs = _fresh_mounted()
        mp = MountPoint(fs)
        mp.write_file("/f", b"abc")
        before = fs.snapshot()
        with mp.open("/f", "r+") as f:
            f.pwrite(b"z", 10)           # zero-filled gap 3..10
        after = fs.snapshot()

        t1 = _fresh_mounted()
        t1.restore(before)
        assert MountPoint(t1).read_file("/f") == b"abc"
        t2 = _fresh_mounted()
        t2.restore(after)
        assert MountPoint(t2).read_file("/f") == b"abc" + b"\x00" * 7 + b"z"

    def test_unlink_and_recreate_between_snapshots(self):
        fs = _fresh_mounted()
        mp = MountPoint(fs)
        mp.write_file("/f", b"first")
        before = fs.snapshot()
        mp.remove("/f")
        mp.write_file("/f", b"second")   # fresh inode number
        after = fs.snapshot()
        t = _fresh_mounted()
        t.restore(after)
        assert MountPoint(t).read_file("/f") == b"second"
        t.restore(before)
        assert MountPoint(t).read_file("/f") == b"first"

    def test_directory_backend_has_no_snapshots(self, tmp_path):
        from repro.fusefs.backend import DirectoryBackend

        fs = FFISFileSystem(backend=DirectoryBackend(str(tmp_path / "b")))
        assert not fs.supports_snapshots
        assert fs.snapshot() is None


class TestZeroCopyWritePath:
    """Hooks must observe an immutable buffer despite the dropped copies."""

    def _observing_fs(self):
        fs = _fresh_mounted()
        seen: List[bytes] = []

        def observer(call):
            if call.primitive == "ffis_write":
                seen.append(call.args["buf"])
            return None

        fs.interposer.add_global_hook(observer)
        return fs, seen

    def test_bytearray_writes_are_frozen_before_hooks(self):
        fs, seen = self._observing_fs()
        mp = MountPoint(fs)
        source = bytearray(b"mutable-source")
        with mp.open("/f", "w") as f:
            f.write(source)
        assert all(isinstance(buf, bytes) for buf in seen)
        # Recycling the application buffer must not rewrite history --
        # neither the device content nor what the hook captured.
        source[:] = b"RECYCLED-BYTES"
        assert mp.read_file("/f") == b"mutable-source"
        assert seen[0] == b"mutable-source"

    def test_memoryview_accepted_through_the_interposer(self):
        fs, seen = self._observing_fs()
        mp = MountPoint(fs)
        payload = bytearray(b"0123456789")
        with mp.open("/f", "w") as f:
            f.pwrite(memoryview(payload)[2:8], 0)
        assert mp.read_file("/f") == b"234567"
        assert isinstance(seen[0], bytes)

    def test_bytes_writes_are_not_copied(self):
        fs, seen = self._observing_fs()
        mp = MountPoint(fs)
        payload = b"immutable-already"
        with mp.open("/f", "w") as f:
            f.write(payload)
        assert seen[0] is payload

    def test_fault_model_sees_immutable_buffer(self, rng):
        """A fault model mutating its view must corrupt the device copy
        through args reassignment only -- and does (BF still fires)."""
        from repro.core.fault_models import make_fault_model
        from repro.core.injector import FaultInjector
        from repro.core.signature import FaultSignature

        fs = _fresh_mounted()
        signature = FaultSignature(model=make_fault_model("BF"),
                                   primitive="ffis_write")
        hook = FaultInjector(signature).arm(fs, 0, rng)
        mp = MountPoint(fs)
        source = bytearray(b"\x00" * 64)
        with mp.open("/f", "w") as f:
            f.write(source)
        assert hook.fired
        assert bytes(source) == b"\x00" * 64          # app buffer untouched
        assert mp.read_file("/f") != b"\x00" * 64     # device corrupted


def _image(counters_per_boundary, steps) -> "ReplayImageStub":
    """A minimal ReplayImage-shaped object for binning tests."""
    from repro.apps.base import ReplayImage, StepTrace

    boundaries = tuple(
        FsImage(extents={}, inodes={}, next_ino=1, clock=0, next_fd=3,
                handles=(), counters={"ffis_write": c})
        for c in counters_per_boundary)
    traces = tuple(StepTrace(name=n, phase=p, ends_phase=e, observed=(),
                             written=(), removed=())
                   for n, p, e in steps)
    return ReplayImage(boundaries=boundaries,
                       carries=tuple({} for _ in boundaries), steps=traces)


class TestChooseBoundary:
    IMAGE = None

    def setup_method(self):
        # vmc | dmc_compute | dmc_write with write counters 0/8/8/12.
        self.image = _image(
            (0, 8, 8, 12),
            (("vmc", "vmc", True), ("dmc_compute", "dmc", False),
             ("dmc_write", "dmc", True)))

    def test_point_in_first_phase_runs_cold(self):
        c = ReplayConstraint(primitive="ffis_write", points=(3,))
        assert choose_boundary(self.image, c) == 0

    def test_point_in_last_phase_restores_latest_safe_boundary(self):
        c = ReplayConstraint(primitive="ffis_write", points=(9,))
        assert choose_boundary(self.image, c) == 2

    def test_point_at_boundary_counter_is_still_live(self):
        c = ReplayConstraint(primitive="ffis_write", points=(8,))
        assert choose_boundary(self.image, c) == 2
        c = ReplayConstraint(primitive="ffis_write", points=(7,))
        assert choose_boundary(self.image, c) == 0

    def test_multi_point_bins_by_first(self):
        c = ReplayConstraint(primitive="ffis_write", points=(11, 8))
        assert choose_boundary(self.image, c) == 2

    def test_unconstrained_restores_final_state(self):
        assert choose_boundary(self.image, ReplayConstraint()) == 3

    def test_notify_phase_caps_the_boundary(self):
        c = ReplayConstraint(notify_phase="vmc")
        assert choose_boundary(self.image, c) == 0
        c = ReplayConstraint(notify_phase="dmc")
        assert choose_boundary(self.image, c) == 2
        c = ReplayConstraint(notify_phase="never-recorded")
        assert choose_boundary(self.image, c) == 3


class ChainApp(HpcApplication):
    """Three-phase toy: A,X -> B(A) -> C(B); X feeds nothing.

    ``executed`` records which steps ran live, so tests can observe
    restore binning and suffix fast-forwarding from the outside.
    """

    name = "chain"

    def __init__(self) -> None:
        super().__init__()
        self.executed: List[str] = []

    def prepare(self, mp, carry) -> None:
        mp.mkdir("/d")

    def steps(self):
        return (RunStep("one", "one", self._one),
                RunStep("two", "two", self._two),
                RunStep("three", "three", self._three))

    def _one(self, mp, carry) -> None:
        self.executed.append("one")
        mp.write_file("/d/a", b"a" * 64)
        mp.write_file("/d/x", b"x" * 64)      # read by nobody

    def _two(self, mp, carry) -> None:
        self.executed.append("two")
        data = mp.read_file("/d/a")
        mp.write_file("/d/b", bytes(255 - v for v in data))

    def _three(self, mp, carry) -> None:
        self.executed.append("three")
        data = mp.read_file("/d/b")
        mp.write_file("/d/c", data[::-1])

    def output_paths(self):
        return ["/d/c"]

    def analyze(self, mp):
        return {"c": mp.read_file("/d/c")}

    def classify(self, golden, mp):
        if mp.read_file("/d/c") == golden.analysis["c"]:
            return Outcome.BENIGN, "c identical"
        return Outcome.SDC, "c differs"


class TestSuffixFastForward:
    """The fault-point-aware scheduling itself, observed per step."""

    def _run_at(self, app, golden, instance: int):
        campaign = Campaign(app, CampaignConfig(fault_model="BF", n_runs=1,
                                                seed=5))
        app.executed.clear()
        record = campaign.run_once(instance, run_rng_seed=123, run_index=0,
                                   golden=golden)
        return record, list(app.executed)

    @pytest.fixture()
    def chain_golden(self):
        app = ChainApp()
        fs = FFISFileSystem()
        with mount(fs) as mp:
            golden = app.capture_golden(mp)
        return app, golden

    def test_fault_in_last_phase_restores_past_the_prefix(self, chain_golden):
        app, golden = chain_golden
        # Writes: a=0, x=1, b=2, c=3.  A fault on c's write needs only
        # step three live.
        record, executed = self._run_at(app, golden, 3)
        assert executed == ["three"]
        assert record.fault_fired

    def test_untouched_suffix_is_fast_forwarded(self, chain_golden):
        app, golden = chain_golden
        # x feeds nothing: steps two and three are spliced from golden.
        record, executed = self._run_at(app, golden, 1)
        assert executed == ["one"]
        assert record.fault_fired
        assert record.outcome is Outcome.BENIGN

    def test_corrupted_dependency_keeps_the_suffix_live(self, chain_golden):
        app, golden = chain_golden
        # a feeds b feeds c: everything downstream must run live.
        record, executed = self._run_at(app, golden, 0)
        assert executed == ["one", "two", "three"]
        assert record.outcome is Outcome.SDC

    def test_middle_fault_restores_prefix_and_runs_suffix(self, chain_golden):
        app, golden = chain_golden
        record, executed = self._run_at(app, golden, 2)   # b's write
        assert executed == ["two", "three"]
        assert record.outcome is Outcome.SDC

    def test_no_replay_escape_hatch_runs_cold(self, chain_golden, monkeypatch):
        app, golden = chain_golden
        monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        record, executed = self._run_at(app, golden, 3)
        assert executed == ["one", "two", "three"]
        monkeypatch.delenv("REPRO_NO_REPLAY")
        replayed, _ = self._run_at(app, golden, 3)
        assert replayed == record

    def test_golden_without_replay_image_runs_cold(self, chain_golden):
        app, golden = chain_golden
        bare = GoldenRecord(outputs=dict(golden.outputs),
                            analysis=dict(golden.analysis),
                            phases=list(golden.phases),
                            total_writes=golden.total_writes)
        record, executed = self._run_at(app, bare, 3)
        assert executed == ["one", "two", "three"]

    def test_unknown_context_without_constraint_runs_cold(self, chain_golden):
        app, golden = chain_golden

        class OpaqueContext(InjectionContext):
            def replay_constraint(self, spec):
                return None

        context = OpaqueContext(app, golden,
                                Campaign(app, CampaignConfig()).signature)
        app.executed.clear()
        execute_run_spec(context, RunSpec(run_index=0, seed=1,
                                          target_instance=3))
        assert app.executed == ["one", "two", "three"]


class TestReplayedCheckpointResume:
    """Kill/resume of a replayed campaign merges identically."""

    def test_resume_completes_the_remainder_with_replay(self, tmp_path):
        app = ChainApp()
        config = CampaignConfig(fault_model="BF", n_runs=6, seed=9)
        fresh = Campaign(app, config).run()
        path = str(tmp_path / "chain.jsonl")
        Campaign(app, config).run(n_runs=2, results_path=path)
        resumed = Campaign(app, config).run(results_path=path, resume=True)
        assert resumed.records == fresh.records
        # And the cold stream agrees (the determinism contract).
        cold = Campaign(app, CampaignConfig(fault_model="BF", n_runs=6,
                                            seed=9, replay=False)).run()
        assert cold.records == fresh.records


class TestSpliceGuardOrdering:
    """The splice guard probes inodes in sorted order, not set order.

    Regression for the ordering hazard at ``replay.py``'s
    ``_state_clean``: iterating ``set(observed) | set(written)`` bare
    made the *first mismatching inode* -- and with it any divergence
    behavior -- depend on CPython's hash layout.  The guard now sorts,
    so the probe sequence is deterministic by construction.
    """

    def _probe_order(self, observed, written):
        from types import SimpleNamespace

        from repro.apps.base import StepTrace
        from repro.core.engine.replay import ReplayConstraint, _Splicer

        probed = []

        def extent_object(ino):
            probed.append(ino)
            return None

        fs = SimpleNamespace(
            backend=SimpleNamespace(extent_object=extent_object),
            inodes=SimpleNamespace(get_or_none=lambda ino: None))
        boundary = SimpleNamespace(extents={}, inodes={})
        image = SimpleNamespace(boundaries=[boundary])
        splicer = _Splicer(fs, image, ReplayConstraint(), carry={})
        trace = StepTrace(name="s", phase="p", ends_phase=True,
                          observed=tuple(observed), written=tuple(written),
                          removed=())
        assert splicer._state_clean(0, trace) is True
        return probed

    def test_probe_order_is_sorted_not_hash_ordered(self):
        # {32, 1} iterates [32, 1] in CPython's small-set layout -- the
        # exact case where bare set iteration diverges from sorted().
        assert self._probe_order(observed=(32,), written=(1,)) == [1, 32]

    def test_union_deduplicates_and_sorts(self):
        assert self._probe_order(observed=(7, 32, 1),
                                 written=(1, 7, 100)) == [1, 7, 32, 100]
