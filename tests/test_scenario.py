"""Tests for composable fault scenarios (repro.core.scenario).

Covers the scenario vocabulary itself (parse/stamp round-trips, point
planning, validation), the multi-shot injector hook, the at-rest decay
hook (including the phase-boundary seam), and scenario-aware campaigns
end to end -- with the single-fault scenario pinned to the classic
engine's behavior.
"""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.engine import RunSpec
from repro.core.fault_models import BitFlipFault
from repro.core.injector import MultiShotHook
from repro.core.outcomes import Outcome, RunRecord
from repro.core.scenario import (
    AtRestDecay,
    AtRestDecayHook,
    BurstFault,
    KFaults,
    SingleFault,
    as_scenario,
    parse_scenario,
    scenario_from_record,
)
from repro.core.signature import FaultSignature
from repro.errors import ConfigError, FFISError
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem


class TestParseAndStamp:
    @pytest.mark.parametrize("spec, expected", [
        ("single", SingleFault()),
        ("k=3", KFaults(k=3)),
        ("k=3,window=16", KFaults(k=3, correlated_window=16)),
        ("burst=4", BurstFault(length=4)),
        ("decay", AtRestDecay()),
        ("decay:bytes=4", AtRestDecay(n_bytes=4)),
        ("decay:bytes=4,region=0-2048", AtRestDecay(n_bytes=4, region=(0, 2048))),
        ("decay:bytes=2,after=mAdd", AtRestDecay(n_bytes=2, after_phase="mAdd")),
    ])
    def test_parse(self, spec, expected):
        assert parse_scenario(spec) == expected

    @pytest.mark.parametrize("scenario", [
        SingleFault(), KFaults(k=2), KFaults(k=5, correlated_window=9),
        BurstFault(length=3), AtRestDecay(),
        AtRestDecay(n_bytes=3, region=(16, 64), after_phase="stage1"),
    ])
    def test_stamp_round_trips(self, scenario):
        assert parse_scenario(scenario.stamp()) == scenario

    @pytest.mark.parametrize("bad", [
        "", "k=", "k=x", "k=3,span=4", "burst=", "mystery",
        "decay:bytes=0x4", "decay:region=5", "decay:lifetime=3",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_scenario(bad)

    @pytest.mark.parametrize("make", [
        lambda: KFaults(k=0), lambda: KFaults(k=2, correlated_window=0),
        lambda: BurstFault(length=0), lambda: AtRestDecay(n_bytes=0),
        lambda: AtRestDecay(region=(8, 8)), lambda: AtRestDecay(region=(-1, 4)),
    ])
    def test_invalid_parameters_rejected(self, make):
        with pytest.raises(ConfigError):
            make()

    def test_as_scenario_coercions(self):
        assert as_scenario(None) == SingleFault()
        assert as_scenario("burst=2") == BurstFault(length=2)
        scenario = KFaults(k=3)
        assert as_scenario(scenario) is scenario
        with pytest.raises(ConfigError):
            as_scenario(42)

    def test_scenario_from_record(self):
        legacy = RunRecord(0, Outcome.BENIGN)
        assert scenario_from_record(legacy) == SingleFault()
        stamped = RunRecord(0, Outcome.SDC, scenario="k=4,window=8")
        assert scenario_from_record(stamped) == KFaults(4, 8)
        with pytest.raises(FFISError, match="unknown scenario"):
            scenario_from_record(RunRecord(0, Outcome.SDC, scenario="warp=9"))


class TestPointPlanning:
    def window(self):
        return range(10, 50)

    def picker(self, seed=0):
        return np.random.default_rng(seed)

    def test_single_matches_classic_draw(self):
        # One draw from the shared picker, exactly like the classic plan.
        a = SingleFault().pick(self.picker(), self.window())
        b = (int(self.picker().integers(10, 50)),)
        assert a == b

    def test_kfaults_points_inside_window(self):
        points = KFaults(k=6).pick(self.picker(), self.window())
        assert 1 <= len(points) <= 6
        assert points == tuple(sorted(set(points)))
        assert all(p in self.window() for p in points)

    def test_kfaults_correlated_points_cluster(self):
        scenario = KFaults(k=5, correlated_window=4)
        for seed in range(8):
            points = scenario.pick(self.picker(seed), self.window())
            assert max(points) - min(points) < 4
            assert all(p in self.window() for p in points)

    def test_burst_is_consecutive_and_clipped(self):
        for seed in range(8):
            points = BurstFault(length=6).pick(self.picker(seed), self.window())
            assert points == tuple(range(points[0], points[0] + len(points)))
            assert points[-1] < 50
        # A burst drawn near the window's end is clipped, never empty.
        tight = BurstFault(length=6).pick(self.picker(), range(49, 50))
        assert tight == (49,)

    def test_decay_plans_no_points(self):
        picker = self.picker()
        before = picker.bit_generator.state
        assert AtRestDecay().pick(picker, self.window()) == ()
        assert picker.bit_generator.state == before  # no draws consumed


class TestMultiShotHook:
    def signature(self):
        return FaultSignature(model=BitFlipFault(n_bits=1))

    def test_fires_once_per_instance_and_joins_notes(self):
        fs = FFISFileSystem()
        hook = MultiShotHook(self.signature(), (0, 2), seed=7)
        fs.interposer.add_hook("ffis_write", hook)
        with mount(fs) as mp:
            mp.write_file("/f.bin", b"x" * 64, block_size=16)
        assert hook.fired
        assert hook.fired_count == 2
        assert hook.note.count("BF:") == 2

    def test_point_zero_matches_single_fault_rng(self):
        """The first point draws from the run's root stream -- the exact
        stream the classic one-shot hook uses -- so one-point scenarios
        are bit-identical to the single-fault engine."""
        payload = bytes(range(256))
        outputs = []
        for instances in ((3,), None):
            fs = FFISFileSystem()
            if instances is None:
                spec = RunSpec(run_index=0, seed=123, target_instance=3)
                hook = SingleFault().arm(fs, self.signature(), spec)
            else:
                hook = MultiShotHook(self.signature(), instances, seed=123)
                fs.interposer.add_hook("ffis_write", hook)
            with mount(fs) as mp:
                mp.write_file("/f.bin", payload, block_size=32)
                outputs.append(mp.read_file("/f.bin"))
            assert hook.fired
        assert outputs[0] == outputs[1]

    def test_validation(self):
        with pytest.raises(FFISError):
            MultiShotHook(self.signature(), (), seed=1)
        with pytest.raises(FFISError):
            MultiShotHook(self.signature(), (-1, 2), seed=1)


class TestAtRestDecayHook:
    def populated_fs(self):
        fs = FFISFileSystem()
        with mount(fs) as mp:
            mp.makedirs("/data")
            mp.write_file("/data/a.bin", bytes(64))
        return fs

    def test_decay_flips_persisted_bits(self):
        fs = self.populated_fs()
        hook = AtRestDecayHook(fs, seed=5, n_bytes=4, region=None,
                               after_phase=None)
        hook.finalize()
        assert hook.fired
        assert "a.bin" in hook.note
        with mount(fs) as mp:
            data = mp.read_file("/data/a.bin")
        flipped = [b for b in data if b]
        assert 1 <= len(flipped) <= 4
        assert all(b & (b - 1) == 0 for b in flipped)  # one bit per byte

    def test_decay_respects_region(self):
        fs = self.populated_fs()
        hook = AtRestDecayHook(fs, seed=5, n_bytes=8, region=(16, 24),
                               after_phase=None)
        hook.finalize()
        with mount(fs) as mp:
            data = mp.read_file("/data/a.bin")
        assert all(b == 0 for b in data[:16]) and all(b == 0 for b in data[24:])
        assert any(data[16:24])

    def test_empty_fs_is_a_noted_no_fire(self):
        fs = FFISFileSystem()
        hook = AtRestDecayHook(fs, seed=5, n_bytes=2, region=None,
                               after_phase=None)
        hook.finalize()
        assert not hook.fired
        assert "no persisted bytes" in hook.note

    def test_region_beyond_every_file_is_a_no_fire(self):
        fs = self.populated_fs()
        hook = AtRestDecayHook(fs, seed=5, n_bytes=2, region=(1000, 2000),
                               after_phase=None)
        hook.finalize()
        assert not hook.fired

    def test_phase_targeted_decay_fires_at_the_boundary(self):
        fs = FFISFileSystem()
        hook = AtRestDecayHook(fs, seed=5, n_bytes=2, region=None,
                               after_phase="stage1")
        seen = {}
        with mount(fs) as mp:
            mp.write_file("/a.bin", bytes(32))
            clean = mp.read_file("/a.bin")
            fs.interposer.notify_phase_end("warmup")
            assert not hook.fired
            fs.interposer.notify_phase_end("stage1")
            assert hook.fired
            seen["after"] = mp.read_file("/a.bin")
        assert seen["after"] != clean
        # finalize() must not fire a phase-targeted decay a second time,
        # nor fire one whose phase never ran.
        hook.finalize()
        missed = AtRestDecayHook(FFISFileSystem(), seed=5, n_bytes=2,
                                 region=None, after_phase="never")
        missed.finalize()
        assert not missed.fired

    def test_decay_is_deterministic(self):
        images = []
        for _ in range(2):
            fs = self.populated_fs()
            AtRestDecayHook(fs, seed=9, n_bytes=3, region=None,
                            after_phase=None).finalize()
            with mount(fs) as mp:
                images.append(mp.read_file("/data/a.bin"))
        assert images[0] == images[1]


class TestScenarioCampaigns:
    def config(self, scenario, n_runs=3, model="BF"):
        return CampaignConfig(fault_model=model, n_runs=n_runs, seed=4,
                              scenario=scenario)

    def test_single_fault_plans_legacy_specs(self, tiny_nyx):
        plan = Campaign(tiny_nyx, self.config("single")).plan()
        assert all(spec.instances is None and spec.scenario is None
                   for spec in plan.specs)

    def test_kfaults_campaign_stamps_records(self, tiny_nyx):
        result = Campaign(tiny_nyx, self.config("k=3")).run()
        for record in result.records:
            assert record.scenario == "k=3"
            assert record.instances is not None
            assert 1 <= len(record.instances) <= 3
            assert record.target_instance == record.instances[0]
        assert result.scenario == "k=3"
        assert "<k=3>" in result.summary()

    def test_burst_records_are_consecutive(self, tiny_nyx):
        result = Campaign(tiny_nyx, self.config("burst=3")).run()
        for record in result.records:
            points = record.instances
            assert points == tuple(range(points[0], points[0] + len(points)))

    def test_decay_campaign_runs_without_instance_window(self, tiny_nyx):
        result = Campaign(tiny_nyx, self.config("decay:bytes=2")).run()
        assert len(result.records) == 3
        for record in result.records:
            assert record.instances == ()
            assert record.target_instance == -1
            assert record.fault_fired

    def test_scenario_extends_campaign_id(self, tiny_nyx, tiny_nyx_golden):
        single = Campaign(tiny_nyx, self.config("single"))
        kfaults = Campaign(tiny_nyx, self.config("k=3"))
        base = single.campaign_id(tiny_nyx_golden)
        assert "scenario=" not in base
        assert kfaults.campaign_id(tiny_nyx_golden) == base + "/scenario=k=3"

    def test_k1_matches_single_fault_outcomes(self, tiny_nyx):
        """KFaults(k=1) plans the same instance draws as SingleFault, so
        only the stamp differs -- outcomes must be identical."""
        single = Campaign(tiny_nyx, self.config("single", n_runs=4)).run()
        k1 = Campaign(tiny_nyx, self.config("k=1", n_runs=4)).run()
        for a, b in zip(single.records, k1.records):
            assert (a.outcome, a.target_instance) == (b.outcome, b.target_instance)
            assert b.instances == (b.target_instance,)

    def test_from_dict_accepts_scenario(self):
        config = CampaignConfig.from_dict(
            {"fault_model": "DW", "n_runs": 2, "scenario": "burst=2"})
        assert config.scenario == BurstFault(length=2)


class TestScenarioCli:
    def run_cli(self, *argv):
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_campaign_scenario_flag(self):
        code, text = self.run_cli("campaign", "--app", "nyx", "--model", "BF",
                                  "--runs", "2", "--seed", "3",
                                  "--scenario", "k=2")
        assert code == 0
        assert "<k=2>" in text

    def test_sweep_scenario_axis(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        code, text = self.run_cli(
            "sweep", "--app", "nyx", "--model", "BF", "--runs", "2",
            "--seed", "3", "--scenario", "single", "--scenario", "k=2",
            "--out", path)
        assert code == 0
        assert "nyx-BF:" in text
        assert "nyx-BF-k=2:" in text
        assert "2 cells" in text

    def test_scenario_rejected_for_metadata_sweeps(self):
        with pytest.raises(SystemExit):
            self.run_cli("campaign", "--app", "nyx",
                         "--metadata-mode", "random-bit",
                         "--scenario", "k=2")

    def test_bad_scenario_spec_is_an_argparse_error(self, capsys):
        """A malformed spec is user input, so it gets a clean argparse
        error (like every other bad flag), not a raw traceback."""
        for argv in (("campaign", "--app", "nyx", "--model", "BF",
                      "--runs", "2", "--scenario", "warp=9"),
                     ("sweep", "--app", "nyx", "--model", "BF",
                      "--runs", "2", "--scenario", "k=x")):
            with pytest.raises(SystemExit) as exc:
                self.run_cli(*argv)
            assert exc.value.code == 2
            assert "scenario" in capsys.readouterr().err
