"""Tests for the grid halo finder and the FoF clustering."""

import numpy as np
import pytest

from repro.apps.nyx.fof import (
    friends_of_friends,
    mean_interparticle_separation,
)
from repro.apps.nyx.halo_finder import (
    HaloCatalog,
    average_value_check,
    candidate_count,
    find_halos,
)


def field_with_blob(shape=(16, 16, 16), center=(8, 8, 8), amplitude=500.0,
                    radius=1.2):
    """Background of ones plus one gaussian blob, mean renormalized to 1."""
    zz, yy, xx = np.meshgrid(*(np.arange(s) for s in shape), indexing="ij")
    r2 = sum((g - c) ** 2 for g, c in zip((zz, yy, xx), center))
    rho = 1.0 + amplitude * np.exp(-0.5 * r2 / radius**2)
    return rho / rho.mean()


class TestFindHalos:
    def test_finds_the_blob(self):
        catalog = find_halos(field_with_blob(), min_cells=4)
        assert len(catalog) == 1
        assert catalog.halos[0].n_cells >= 4
        assert np.allclose(catalog.halos[0].position, (8, 8, 8), atol=0.5)

    def test_min_cells_filters(self):
        rho = field_with_blob(radius=0.6)   # tiny blob
        small = find_halos(rho, min_cells=1)
        large = find_halos(rho, min_cells=50)
        assert len(small) >= 1
        assert len(large) == 0

    def test_threshold_is_relative_to_average(self):
        rho = field_with_blob()
        catalog = find_halos(rho)
        assert catalog.threshold == pytest.approx(81.66 * rho.mean())
        # Scaling the whole field must not change the candidate set.
        assert candidate_count(rho * 4.0) == candidate_count(rho)

    def test_uniform_field_has_no_halos(self):
        catalog = find_halos(np.ones((8, 8, 8)))
        assert len(catalog) == 0
        assert catalog.n_candidates == 0

    def test_nan_average_detected_as_no_halos(self):
        rho = field_with_blob()
        rho[0, 0, 0] = np.nan
        catalog = find_halos(rho)
        assert len(catalog) == 0
        assert not np.isfinite(catalog.average_value)

    def test_negative_threshold_bails_out(self):
        rho = field_with_blob()
        rho[0, 0, 0] = -1e9 * rho.size   # garbage average
        catalog = find_halos(rho)
        assert len(catalog) == 0

    def test_mass_is_sum_over_cells(self):
        rho = field_with_blob()
        catalog = find_halos(rho, min_cells=4)
        halo = catalog.halos[0]
        mask = rho > catalog.threshold
        assert halo.mass == pytest.approx(rho[mask].sum())

    def test_catalog_text_is_stable(self):
        rho = field_with_blob()
        assert find_halos(rho).to_text() == find_halos(rho).to_text()
        assert "# mean: 1.000" in find_halos(rho).to_text()

    def test_catalog_text_ordering_deterministic(self):
        rho = field_with_blob() + field_with_blob(center=(3, 3, 3)) - 1.0
        rho /= rho.mean()
        text = find_halos(rho, min_cells=2).to_text()
        lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert lines == sorted(lines, key=lambda ln: float(ln.split()[0]))

    def test_non_3d_rejected(self):
        with pytest.raises(ValueError):
            find_halos(np.ones((4, 4)))

    def test_empty_catalog_properties(self):
        catalog = HaloCatalog()
        assert catalog.masses.shape == (0,)
        assert catalog.positions.shape == (0, 3)


class TestAverageValueCheck:
    def test_accepts_conserved_mass(self):
        assert average_value_check(np.ones((4, 4, 4)))

    def test_rejects_point_one_percent_shift(self):
        """The paper: every DW SDC shifted the average by >= 0.1 %."""
        rho = np.ones((10, 10, 10))
        rho[:2] = 0.994
        assert not average_value_check(rho)

    def test_rejects_nan(self):
        rho = np.ones((4, 4, 4))
        rho[0, 0, 0] = np.nan
        assert not average_value_check(rho)


class TestFriendsOfFriends:
    def two_clusters(self, rng, n=60, spread=0.05):
        a = rng.normal(0, spread, (n, 3)) + [1, 1, 1]
        b = rng.normal(0, spread, (n, 3)) + [4, 4, 4]
        return np.vstack([a, b])

    def test_finds_two_groups(self, rng):
        positions = self.two_clusters(rng)
        groups = friends_of_friends(positions, linking_length=0.3, min_members=10)
        assert len(groups) == 2
        assert {g.size for g in groups} == {60}

    def test_linking_length_merges(self, rng):
        positions = self.two_clusters(rng)
        groups = friends_of_friends(positions, linking_length=10.0, min_members=10)
        assert len(groups) == 1
        assert groups[0].size == 120

    def test_min_members_filters(self, rng):
        positions = self.two_clusters(rng, n=5)
        assert friends_of_friends(positions, 0.3, min_members=8) == []

    def test_masses_weight_center(self, rng):
        positions = np.array([[0.0, 0, 0], [1.0, 0, 0]] * 5)
        masses = np.array([3.0, 1.0] * 5)
        groups = friends_of_friends(positions, 1.5, masses=masses, min_members=2)
        assert groups[0].center[0] == pytest.approx(0.25)

    def test_periodic_box(self, rng):
        a = rng.normal(0.05, 0.01, (20, 3)) % 10.0
        b = rng.normal(9.95, 0.01, (20, 3)) % 10.0
        positions = np.vstack([a, b])
        open_groups = friends_of_friends(positions, 0.5, min_members=10)
        wrapped = friends_of_friends(positions, 0.5, min_members=10, box_size=10.0)
        assert len(open_groups) == 2
        assert len(wrapped) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((3, 2)), 0.1)
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((3, 3)), -1.0)
        with pytest.raises(ValueError):
            friends_of_friends(np.zeros((3, 3)), 0.1, masses=np.ones(2))

    def test_mean_separation(self):
        assert mean_interparticle_separation(1000, 10.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mean_interparticle_separation(0, 1.0)

    def test_groups_sorted_by_mass(self, rng):
        a = rng.normal(0, 0.05, (30, 3))
        b = rng.normal(5, 0.05, (80, 3))
        groups = friends_of_friends(np.vstack([a, b]), 0.4, min_members=10)
        assert groups[0].size == 80
