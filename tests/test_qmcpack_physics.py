"""Physics tests for the He wavefunction, VMC, and DMC."""

import numpy as np
import pytest

from repro.apps.qmcpack import (
    DmcParams,
    HeliumWavefunction,
    VmcParams,
    run_dmc,
    run_vmc,
)
from repro.util.rngstream import RngStream


@pytest.fixture(scope="module")
def wf():
    return HeliumWavefunction()


@pytest.fixture(scope="module")
def equilibrated_walkers(wf):
    walkers, _ = run_vmc(wf, VmcParams(n_walkers=128, n_blocks=20),
                         RngStream(4, "t").generator())
    return walkers


class TestWavefunction:
    def test_local_energy_matches_finite_differences(self, wf, rng):
        """E_L = -1/2 (lap psi)/psi + V checked against a numeric Laplacian."""
        walkers = rng.normal(0, 0.8, (20, 2, 3))
        h = 1e-5
        lap = np.zeros(20)
        for e in range(2):
            for d in range(3):
                plus = walkers.copy()
                plus[:, e, d] += h
                minus = walkers.copy()
                minus[:, e, d] -= h
                lap += (np.exp(wf.log_psi(plus) - wf.log_psi(walkers))
                        + np.exp(wf.log_psi(minus) - wf.log_psi(walkers))
                        - 2.0) / h**2
        r1 = np.linalg.norm(walkers[:, 0], axis=1)
        r2 = np.linalg.norm(walkers[:, 1], axis=1)
        r12 = np.linalg.norm(walkers[:, 0] - walkers[:, 1], axis=1)
        numeric = -0.5 * lap + (-2 / r1 - 2 / r2 + 1 / r12)
        assert np.allclose(wf.local_energy(walkers), numeric, atol=1e-4)

    def test_gradient_matches_finite_differences(self, wf, rng):
        walkers = rng.normal(0, 0.8, (10, 2, 3))
        h = 1e-6
        grad = wf.grad_log_psi(walkers)
        for e in range(2):
            for d in range(3):
                plus = walkers.copy()
                plus[:, e, d] += h
                numeric = (wf.log_psi(plus) - wf.log_psi(walkers)) / h
                assert np.allclose(grad[:, e, d], numeric, atol=1e-4)

    def test_nuclear_cusp_bounded_energy(self, wf):
        """With zeta = Z the 1/r divergence cancels at the nucleus."""
        near = np.array([[[1e-7, 0, 0], [0.5, 0.5, 0.5]]])
        far = np.array([[[0.5, 0, 0], [0.5, 0.5, 0.5]]])
        assert abs(wf.local_energy(near)[0]) < 50 * abs(wf.local_energy(far)[0])

    def test_origin_walkers_are_finite(self, wf):
        """Corrupted restarts can put both electrons at the origin."""
        walkers = np.zeros((4, 2, 3))
        assert np.all(np.isfinite(wf.local_energy(walkers)))
        assert np.all(np.isfinite(wf.log_psi(walkers)))

    def test_quantum_force_is_twice_gradient(self, wf, rng):
        walkers = rng.normal(0, 1, (5, 2, 3))
        assert np.allclose(wf.quantum_force(walkers),
                           2 * wf.grad_log_psi(walkers))


class TestVmc:
    def test_energy_above_exact_ground_state(self, wf):
        """Variational principle: VMC energy >= -2.90372."""
        _, rows = run_vmc(wf, VmcParams(n_walkers=256, n_blocks=40),
                          RngStream(1, "v").generator())
        energy = np.mean([r.local_energy for r in rows])
        assert -2.92 < energy
        assert energy < -2.80   # but a decent trial function

    def test_deterministic_given_rng(self, wf):
        a = run_vmc(wf, VmcParams(n_walkers=32, n_blocks=5),
                    RngStream(7, "x").generator())
        b = run_vmc(wf, VmcParams(n_walkers=32, n_blocks=5),
                    RngStream(7, "x").generator())
        assert np.array_equal(a[0], b[0])
        assert [r.local_energy for r in a[1]] == [r.local_energy for r in b[1]]

    def test_walker_shape(self, wf, equilibrated_walkers):
        assert equilibrated_walkers.shape == (128, 2, 3)


class TestDmc:
    def test_projects_below_vmc(self, wf, equilibrated_walkers):
        params = DmcParams(target_walkers=128, n_blocks=60, steps_per_block=8)
        _, rows = run_dmc(wf, equilibrated_walkers, params,
                          RngStream(2, "d").generator())
        energy = np.average([r.local_energy for r in rows[15:]],
                            weights=[r.weight for r in rows[15:]])
        assert -2.92 < energy < -2.88   # near the exact -2.90372

    def test_deterministic(self, wf, equilibrated_walkers):
        params = DmcParams(target_walkers=128, n_blocks=5)
        a = run_dmc(wf, equilibrated_walkers, params, RngStream(3, "d").generator())
        b = run_dmc(wf, equilibrated_walkers, params, RngStream(3, "d").generator())
        assert [r.local_energy for r in a[1]] == [r.local_energy for r in b[1]]

    def test_corrupted_walkers_still_run(self, wf, equilibrated_walkers):
        """NaN/inf coordinates (corrupted restart) must not explode."""
        walkers = equilibrated_walkers.copy()
        walkers[:8] = np.nan
        walkers[8:12] = np.inf
        params = DmcParams(target_walkers=128, n_blocks=5)
        _, rows = run_dmc(wf, walkers, params, RngStream(4, "d").generator())
        assert all(np.isfinite(r.local_energy) for r in rows)

    def test_population_weight_tracked(self, wf, equilibrated_walkers):
        params = DmcParams(target_walkers=128, n_blocks=5)
        _, rows = run_dmc(wf, equilibrated_walkers, params,
                          RngStream(5, "d").generator())
        for row in rows:
            assert row.weight > 0

    def test_bad_shape_rejected(self, wf):
        with pytest.raises(ValueError):
            run_dmc(wf, np.zeros((4, 3)), DmcParams(), RngStream(1).generator())
