"""Coverage for the error taxonomy, primitive routing, and object headers."""

import pytest

from repro import errors
from repro.fusefs.mount import mount
from repro.fusefs.vfs import PRIMITIVES, FFISFileSystem
from repro.mhdf5 import constants as C
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.fieldmap import FieldClass
from repro.mhdf5.objheader import decode_object_header, encode_object_header, message_index


class TestErrorTaxonomy:
    def test_format_error_is_a_crash(self):
        assert issubclass(errors.FormatError, errors.ApplicationCrash)
        assert issubclass(errors.ApplicationCrash, errors.ReproError)

    def test_ffis_errors_are_not_crashes(self):
        """Framework misuse must never be classified as an experimental
        outcome."""
        assert not issubclass(errors.FFISError, errors.ApplicationCrash)
        assert not issubclass(errors.ConfigError, errors.ApplicationCrash)

    def test_vfs_errors_are_os_errors(self):
        assert issubclass(errors.FileNotFound, OSError)
        assert errors.FileNotFound.errno_name == "ENOENT"
        assert errors.BadFileDescriptor.errno_name == "EBADF"

    def test_not_mounted_is_framework_error(self):
        assert issubclass(errors.NotMounted, errors.FFISError)


class TestPrimitiveRouting:
    """Every advertised primitive must dispatch through the interposer,
    so any of them can host a fault (Table I's 'Affected FUSE
    primitives' column)."""

    def test_every_primitive_is_interposable(self, fs):
        seen = []
        fs.interposer.add_global_hook(lambda call: seen.append(call.primitive))
        with mount(fs) as mp:
            mp.mkdir("/d")
            mp.mknod("/d/node")
            mp.chmod("/d/node", 0o600)
            with mp.open("/d/f", "w") as f:
                f.write(b"hello")
                f.fsync()
            with mp.open("/d/f", "r") as f:
                f.read()
            mp.rename("/d/f", "/d/g")
            mp.truncate("/d/g", 2)
            mp.remove("/d/g")
            mp.remove("/d/node")
            fs.ffis_rmdir("/d")
        routed = set(seen)
        for primitive in PRIMITIVES:
            assert primitive in routed, f"{primitive} bypassed the interposer"

    def test_suppressed_namespace_ops(self, fs):
        from repro.fusefs.interposer import CallDecision
        fs.interposer.add_hook("ffis_mkdir", lambda c: CallDecision.SUPPRESS)
        with mount(fs) as mp:
            mp.mkdir("/ghost")
            assert not mp.exists("/ghost")

    def test_mknod_mode_rewrite_applies(self, fs):
        """Fig. 3b: hooks rewrite mknod's mode before it is applied."""

        def force_mode(call):
            if call.primitive == "ffis_mknod":
                call.args["mode"] = 0o401

        fs.interposer.add_hook("ffis_mknod", force_mode)
        with mount(fs) as mp:
            mp.mknod("/n", mode=0o644)
            assert mp.stat("/n").mode == 0o401


class TestObjectHeaderFraming:
    def build(self, messages):
        w = FieldWriter(container="t")
        encode_object_header(w, messages)
        return w.getvalue()

    def body(self, value: bytes):
        def encoder(bw: FieldWriter) -> None:
            bw.put_bytes(value, "payload", FieldClass.NUMERIC)
        return encoder

    def test_roundtrip_two_messages(self):
        raw = self.build([(C.MSG_NIL, "a", self.body(b"abc")),
                          (C.MSG_MTIME, "b", self.body(b"defg"))])
        messages = decode_object_header(FieldReader(raw))
        assert [m.msg_type for m in messages] == [C.MSG_NIL, C.MSG_MTIME]
        assert raw[messages[0].body_start:messages[0].body_end] == b"abc"
        assert raw[messages[1].body_start:messages[1].body_end] == b"defg"

    def test_unknown_message_type_crashes(self):
        raw = bytearray(self.build([(C.MSG_NIL, "a", self.body(b"abc"))]))
        raw[12] = 0x77   # message type low byte -> unknown id
        with pytest.raises(errors.FormatError, match="unknown"):
            decode_object_header(FieldReader(bytes(raw)))

    def test_bad_version_crashes(self):
        raw = bytearray(self.build([(C.MSG_NIL, "a", self.body(b"abc"))]))
        raw[0] = 9
        with pytest.raises(errors.FormatError):
            decode_object_header(FieldReader(bytes(raw)))

    def test_oversized_message_count_crashes(self):
        raw = bytearray(self.build([(C.MSG_NIL, "a", self.body(b"abc"))]))
        raw[2:4] = (2000).to_bytes(2, "little")
        with pytest.raises(errors.FormatError):
            decode_object_header(FieldReader(bytes(raw)))

    def test_message_size_overflow_crashes(self):
        raw = bytearray(self.build([(C.MSG_NIL, "a", self.body(b"abc"))]))
        raw[14:16] = (5000).to_bytes(2, "little")   # message size field
        with pytest.raises(errors.FormatError):
            decode_object_header(FieldReader(bytes(raw)))

    def test_message_index_keeps_first(self):
        raw = self.build([(C.MSG_NIL, "a", self.body(b"x")),
                          (C.MSG_NIL, "b", self.body(b"y"))])
        messages = decode_object_header(FieldReader(raw))
        index = message_index(messages)
        assert index[C.MSG_NIL].body_start == messages[0].body_start


class TestDirectoryBackedCampaign:
    def test_campaign_on_directory_backend(self, tmp_path, tiny_nyx):
        """Campaigns also run with on-disk extents (post-mortem debugging
        setups); outcomes must match the in-memory backend."""
        from repro.core.campaign import Campaign
        from repro.core.config import CampaignConfig
        from repro.fusefs.backend import DirectoryBackend

        counter = [0]

        def fs_factory():
            counter[0] += 1
            root = tmp_path / f"run{counter[0]}"
            return FFISFileSystem(backend=DirectoryBackend(str(root)))

        config = CampaignConfig(fault_model="DW", n_runs=4, seed=6)
        on_disk = Campaign(tiny_nyx, config, fs_factory=fs_factory).run()
        in_memory = Campaign(tiny_nyx, config).run()
        assert [r.outcome for r in on_disk.records] == \
            [r.outcome for r in in_memory.records]
