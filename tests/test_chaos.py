"""Chaos suite: the distributed engine under injected infrastructure
faults.

The contract under test is the paper's own methodology pointed back at
the engine: inject storage-stack faults (transient errors, torn writes,
rename-then-crash, stale directory listings, full disks) through the
:class:`QueueIO` seam and verify the campaign either *completes
byte-identically* to serial execution (faults the retry layer and lease
protocol absorb) or *completes partially with every hole named*
(persistent faults the quarantine/degradation ladder owns).  Nothing is
ever silently dropped.

Layout:

* unit tests for :class:`FaultSpec`/:class:`FaultyIO` (schedule
  determinism, fault semantics per kind) and :func:`retry_io`;
* queue-level chaos: damaged-queue resume, poison-lease quarantine,
  expire/unlink races, partial merges with hole reports;
* the **fast smoke** (gates every PR, seconds): a seeded transient-
  fault campaign drains byte-identically, twice, from one seed;
* a hypothesis property: *any* bounded schedule of transient faults is
  invisible in the merged bytes;
* the **slow soak** (weekly lane): crash + ENOSPC + rename-then-crash
  fleets that must finish via quarantine and degradation, holes
  reported.
"""

import errno
import filecmp
import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import execute_sweep, iter_stamped_records
from repro.core.engine.dist import (
    TRANSIENT_ERRNOS,
    ChaosCrash,
    Coordinator,
    FaultSpec,
    FaultyIO,
    FileQueue,
    RetryPolicy,
    execute_distributed,
    merge_shards,
    retry_io,
    run_worker,
    shard_plan,
    write_merged,
)
from repro.core.engine.sink import JsonlSink
from repro.errors import FFISError

from tests.test_dist import synth_record, synthetic_plan, toy_plan


# -- FaultSpec / FaultyIO -------------------------------------------------------


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(FFISError, match="unknown fault site"):
            FaultSpec(site="scribble")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FFISError, match="unknown fault kind"):
            FaultSpec(site="write", kind="meteor")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FFISError, match="probability"):
            FaultSpec(site="write", probability=1.5)


class TestFaultyIO:
    def test_error_fault_raises_with_the_declared_errno(self, tmp_path):
        io_ = FaultyIO(1, [FaultSpec(site="listdir", err=errno.ENOSPC)])
        with pytest.raises(OSError) as err:
            io_.listdir(str(tmp_path))
        assert err.value.errno == errno.ENOSPC
        (event,) = io_.events
        assert (event.site, event.kind, event.detail) == \
            ("listdir", "error", "ENOSPC")

    def test_probability_zero_never_fires(self, tmp_path):
        io_ = FaultyIO(1, [FaultSpec(site="exists", probability=0.0)])
        for _ in range(50):
            io_.exists(str(tmp_path))
        assert io_.events == []

    def test_schedule_is_a_pure_function_of_the_seed(self, tmp_path):
        spec = FaultSpec(site="exists", probability=0.5, err=errno.EIO)

        def schedule(seed):
            io_ = FaultyIO(seed, [spec])
            for _ in range(40):
                try:
                    io_.exists(str(tmp_path))
                except OSError:
                    pass
            return [(e.site, e.index, e.kind) for e in io_.events]

        assert schedule(7) == schedule(7)
        assert 0 < len(schedule(7)) < 40
        assert schedule(7) != schedule(8)

    def test_max_faults_bounds_total_injections(self, tmp_path):
        io_ = FaultyIO(1, [FaultSpec(site="exists", max_faults=2)])
        failures = 0
        for _ in range(10):
            try:
                io_.exists(str(tmp_path))
            except OSError:
                failures += 1
        assert failures == 2 and len(io_.events) == 2

    def test_match_restricts_injection_by_path(self, tmp_path):
        victim = tmp_path / "victim.txt"
        bystander = tmp_path / "bystander.txt"
        victim.write_text("v")
        bystander.write_text("b")
        io_ = FaultyIO(1, [FaultSpec(site="unlink", match="victim")])
        io_.unlink(str(bystander))     # clean: match excludes it
        with pytest.raises(OSError):
            io_.unlink(str(victim))
        assert not bystander.exists() and victim.exists()

    def test_torn_write_persists_a_prefix_then_raises(self, tmp_path):
        path = str(tmp_path / "lease.json")
        io_ = FaultyIO(1, [FaultSpec(site="write", kind="torn",
                                     err=errno.EIO)])
        f = io_.open_w(path)
        try:
            with pytest.raises(OSError) as err:
                io_.write(f, b"0123456789")
        finally:
            f.close()
        assert err.value.errno == errno.EIO
        with open(path, "rb") as g:
            assert g.read() == b"01234"

    def test_rename_then_crash_completes_the_rename_first(self, tmp_path):
        src, dst = str(tmp_path / "a.tmp"), str(tmp_path / "a.json")
        with open(src, "w", encoding="utf-8") as f:
            f.write("x")
        io_ = FaultyIO(1, [FaultSpec(site="replace", kind="crash")])
        with pytest.raises(ChaosCrash):
            io_.replace(src, dst)
        assert os.path.exists(dst) and not os.path.exists(src)

    def test_stale_listdir_replays_the_previous_snapshot(self, tmp_path):
        (tmp_path / "a").write_text("")
        io_ = FaultyIO(1, [FaultSpec(site="listdir", kind="stale")])
        assert io_.listdir(str(tmp_path)) == ["a"]  # no snapshot yet
        (tmp_path / "b").write_text("")
        assert io_.listdir(str(tmp_path)) == ["a"]  # stale: b invisible
        assert any(e.kind == "stale" for e in io_.events)

    def test_slow_fault_sleeps_the_declared_latency(self, tmp_path):
        naps = []
        io_ = FaultyIO(1, [FaultSpec(site="exists", kind="slow",
                                     latency=0.25, max_faults=1)],
                       sleep=naps.append)
        io_.exists(str(tmp_path))
        assert naps == [0.25]


# -- retry_io -------------------------------------------------------------------


class TestRetry:
    def test_transient_errors_retried_until_success(self):
        calls, naps = [], []

        def op():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "flaky mount")
            return "ok"

        policy = RetryPolicy(attempts=4, base_delay=0.01, seed=3)
        assert retry_io(policy, "claim", op, sleep=naps.append) == "ok"
        assert len(calls) == 3
        assert naps == [policy.backoff("claim", 0),
                        policy.backoff("claim", 1)]

    def test_nontransient_errors_propagate_immediately(self):
        calls = []

        def op():
            calls.append(1)
            raise OSError(errno.ENOSPC, "disk full")

        with pytest.raises(OSError) as err:
            retry_io(RetryPolicy(attempts=5), "post", op,
                     sleep=lambda _: None)
        assert err.value.errno == errno.ENOSPC
        assert len(calls) == 1

    def test_attempt_budget_exhausted_raises_the_fault(self):
        calls = []

        def op():
            calls.append(1)
            raise OSError(errno.ESTALE, "handle")

        with pytest.raises(OSError) as err:
            retry_io(RetryPolicy(attempts=3), "heartbeat", op,
                     sleep=lambda _: None)
        assert err.value.errno == errno.ESTALE
        assert len(calls) == 3

    def test_timeout_escalates_to_a_persistent_fault(self):
        def op():
            raise OSError(errno.EIO, "still flaky")

        policy = RetryPolicy(attempts=10, timeout=0.0)
        with pytest.raises(FFISError, match="persistent"):
            retry_io(policy, "finalize", op, sleep=lambda _: None)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=9)
        for attempt in range(5):
            delay = policy.backoff("claim", attempt)
            assert delay == policy.backoff("claim", attempt)
            base = min(policy.max_delay,
                       policy.base_delay * (2 ** attempt))
            assert base * (1 - policy.jitter) <= delay \
                <= base * (1 + policy.jitter)
        assert RetryPolicy(seed=1).backoff("claim", 1) \
            != RetryPolicy(seed=2).backoff("claim", 1)

    def test_policy_validation(self):
        with pytest.raises(FFISError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(FFISError, match="jitter"):
            RetryPolicy(jitter=1.0)


# -- queue-level chaos ----------------------------------------------------------


class TestDamagedQueueResume:
    def build(self, tmp_path, **kwargs):
        plan = synthetic_plan((4,))
        leases = shard_plan(plan, 2)
        root = str(tmp_path / "q")
        queue = FileQueue.create(root, plan, leases, **kwargs)
        return plan, leases, root, queue

    def test_truncated_pending_lease_is_quarantined_and_reposted(
            self, tmp_path):
        plan, leases, root, queue = self.build(tmp_path)
        victim = os.path.join(queue.pending_dir,
                              f"{leases[0].lease_id}.json")
        with open(victim, "w", encoding="utf-8") as f:
            f.write('{"lease_id": "lease-000')  # truncated mid-write
        with pytest.warns(UserWarning, match="unparseable"):
            queue = FileQueue.create(root, plan, leases, reuse=True)
        counts = queue.counts()
        assert counts["pending"] == len(leases)  # re-posted pristine
        assert counts["quarantined"] == 1
        (diag,) = queue.quarantined()
        assert diag["lease_id"] == leases[0].lease_id
        assert "unparseable" in diag["reason"]
        drained = []
        while True:
            claim = queue.claim("w0")
            if claim is None:
                break
            drained.append(claim.lease.lease_id)
            queue.complete(claim)
        assert drained == [lease.lease_id for lease in leases]
        assert queue.all_done()

    def test_garbage_leased_claim_is_quarantined_and_reposted(
            self, tmp_path):
        plan, leases, root, queue = self.build(tmp_path)
        claim = queue.claim("w0")
        with open(claim.path, "w", encoding="utf-8") as f:
            f.write("\x00\x00 not json")
        with pytest.warns(UserWarning, match="unparseable"):
            queue = FileQueue.create(root, plan, leases, reuse=True)
        counts = queue.counts()
        assert counts["pending"] == len(leases)
        assert counts["leased"] == 0
        assert counts["quarantined"] == 1
        (diag,) = queue.quarantined()
        assert diag["lease_id"] == claim.lease.lease_id


class TestPoisonQuarantine:
    def test_failed_lease_requeues_then_quarantines(self, tmp_path):
        plan = synthetic_plan((4,))
        leases = shard_plan(plan, 2)
        queue = FileQueue.create(str(tmp_path / "q"), plan, leases,
                                 quarantine_after=2)
        claim = queue.claim("w0")
        queue.fail(claim, "segment write blew up")
        assert queue.counts()["pending"] == len(leases)  # re-posted
        claim = queue.claim("w0")
        assert claim.lease.attempt == 1
        with pytest.warns(UserWarning, match="quarantined"):
            queue.fail(claim, "segment write blew up again")
        counts = queue.counts()
        assert counts["quarantined"] == 1
        assert counts["pending"] == len(leases) - 1
        (diag,) = queue.quarantined()
        assert diag["reason"] == "segment write blew up again"
        assert diag["worker"] == "w0"
        survivor = queue.claim("w1")
        queue.complete(survivor)
        assert queue.settled() and not queue.all_done()

    def test_expiry_quarantines_past_the_attempt_budget(self, tmp_path):
        plan = synthetic_plan((2,))
        (lease,) = shard_plan(plan, 2)
        queue = FileQueue.create(str(tmp_path / "q"), plan, [lease],
                                 quarantine_after=2)
        for expected_attempt in (1, 2):
            claim = queue.claim(f"dead{expected_attempt}")
            if expected_attempt < 2:
                (requeued,) = queue.expire_stale(0.0,
                                                 now=time.time() + 10)
                assert requeued.attempt == expected_attempt
            else:
                with pytest.warns(UserWarning, match="attempt budget"):
                    assert queue.expire_stale(
                        0.0, now=time.time() + 10) == []
        (diag,) = queue.quarantined()
        assert "attempt budget" in diag["reason"]
        assert queue.settled() and not queue.all_done()

    def test_expire_skips_claims_unlinked_mid_scan(self, tmp_path):
        """The scandir/stat race: a claim completed (and unlinked)
        between the expiry sweep's listing and its mtime probe is
        skipped, not a crash."""
        plan = synthetic_plan((4,))
        leases = shard_plan(plan, 2)
        io_ = FaultyIO(5, [FaultSpec(site="listdir", kind="stale",
                                     match="leased", probability=1.0)])
        queue = FileQueue.create(str(tmp_path / "q"), plan, leases,
                                 io=io_)
        claim = queue.claim("w0")
        assert queue.expire_stale(3600.0) == []  # snapshots leased/
        queue.complete(claim)                    # unlinks the claim
        # The stale listing still names the unlinked claim; the sweep
        # must treat the vanished file as settled, not die on it.
        assert queue.expire_stale(0.0, now=time.time() + 10) == []
        assert any(e.kind == "stale" for e in io_.events)


class TestPartialMerge:
    def shards(self, tmp_path, plan, drop=()):
        stamps = {cell.key: cell.campaign_id for cell in plan.cells}
        path = str(tmp_path / "seg-lease-00000--w0.jsonl")
        sink = JsonlSink(path)
        try:
            for cell in plan.cells:
                for spec in cell.plan.specs:
                    if (cell.key, spec.run_index) in drop:
                        continue
                    sink.emit_stamped(
                        synth_record(cell.key, spec.run_index),
                        stamps[cell.key])
        finally:
            sink.close()
        return [path]

    def test_full_merge_error_suggests_partial_mode(self, tmp_path):
        plan = synthetic_plan((3, 2))
        paths = self.shards(tmp_path, plan, drop={("B", 1)})
        with pytest.raises(FFISError, match="partial=True"):
            merge_shards(plan, paths)

    def test_partial_merge_names_every_hole(self, tmp_path):
        plan = synthetic_plan((3, 2))
        paths = self.shards(tmp_path, plan, drop={("A", 2), ("B", 1)})
        merged, stats = merge_shards(plan, paths, partial=True)
        assert stats.holes == ("A:2", "B:1")
        assert [r.run_index for r in merged["A"]] == [0, 1]
        assert [r.run_index for r in merged["B"]] == [0]
        assert stats.total == 3

    def test_partial_write_emits_receipt_with_quarantine_diags(
            self, tmp_path):
        plan = synthetic_plan((3, 2))
        paths = self.shards(tmp_path, plan, drop={("B", 1)})
        out = str(tmp_path / "results.jsonl")
        diag = {"lease_id": "lease-00002", "reason": "poison"}
        stats = write_merged(plan, paths, out, partial=True,
                             quarantined=(diag,))
        assert stats.holes == ("B:1",)
        pairs = [(stamp, record.run_index)
                 for _, stamp, record in iter_stamped_records(out)]
        assert len(pairs) == 4 and ("camp-B", 1) not in pairs
        with open(out + ".holes.json", encoding="utf-8") as f:
            report = json.load(f)
        assert report["complete"] is False
        assert report["missing_runs"] == ["B:1"]
        assert report["quarantined"] == [diag]

    def test_receipt_written_even_when_partial_is_complete(self, tmp_path):
        plan = synthetic_plan((2,))
        paths = self.shards(tmp_path, plan)
        out = str(tmp_path / "results.jsonl")
        write_merged(plan, paths, out, partial=True)
        with open(out + ".holes.json", encoding="utf-8") as f:
            report = json.load(f)
        assert report["complete"] is True
        assert report["missing_runs"] == []


# -- the fast chaos smoke (gates every PR) --------------------------------------

#: Bounded transient faults the retry layer and lease protocol must
#: absorb without a trace: flaky renames, torn lease JSON, stale NFS
#: listings, failing heartbeats.
SMOKE_FAULTS = (
    FaultSpec(site="replace", err=errno.EIO, probability=0.3,
              max_faults=3),
    FaultSpec(site="write", kind="torn", err=errno.EIO, probability=0.3,
              max_faults=2, match="pending"),
    FaultSpec(site="listdir", kind="stale", probability=0.2,
              max_faults=3),
    FaultSpec(site="utime", err=errno.ESTALE, probability=0.5,
              max_faults=2),
)


def _drain_under_chaos(root, plan, seed, results,
                       faults=SMOKE_FAULTS, quarantine_after=3):
    """One in-process campaign through a seeded FaultyIO; returns the
    io (for schedule assertions) and the merge stats."""
    io_ = FaultyIO(seed, faults)
    retry = RetryPolicy(attempts=6, base_delay=0.0, seed=seed)
    coordinator = Coordinator(plan, root, lease_runs=2, io=io_,
                              retry=retry,
                              quarantine_after=quarantine_after)
    queue = coordinator.post()
    run_worker(root, plan, "w0", io=io_, retry=retry,
               poll_interval=0.0, max_idle_polls=6)
    coordinator.finish(results_path=results, overwrite=True)
    return io_, queue


class TestChaosSmoke:
    def test_transient_chaos_is_byte_invisible_and_replayable(
            self, tmp_path):
        """The PR gate: a seeded schedule of transient faults drains to
        a checkpoint byte-identical to serial, and replaying the seed
        reproduces the exact same schedule and the exact same bytes."""
        plan = toy_plan(n_runs=4)
        serial = str(tmp_path / "serial.jsonl")
        execute_sweep(plan, results_path=serial)

        runs = []
        for attempt in ("one", "two"):
            root = str(tmp_path / f"q-{attempt}")
            dist = str(tmp_path / f"dist-{attempt}.jsonl")
            io_, queue = _drain_under_chaos(root, plan, seed=1234,
                                            results=dist)
            assert filecmp.cmp(serial, dist, shallow=False)
            assert queue.all_done()
            assert queue.counts()["quarantined"] == 0
            runs.append((dist, [(e.site, e.index, e.kind, e.detail)
                                for e in io_.events]))
        (dist_one, events_one), (dist_two, events_two) = runs
        assert events_one, "the chaos schedule never fired"
        assert events_one == events_two
        assert filecmp.cmp(dist_one, dist_two, shallow=False)


# -- the property: bounded transient chaos is invisible -------------------------

_TRANSIENT = sorted(TRANSIENT_ERRNOS)

#: Schedules guaranteed drainable by construction: every family is
#: either absorbed by the retry budget (error/torn, one shot per spec,
#: at most three specs versus six attempts) or structurally tolerated
#: (stale listings).
_DRAINABLE_SPECS = st.lists(
    st.one_of(
        st.builds(FaultSpec, site=st.just("replace"),
                  err=st.sampled_from(_TRANSIENT),
                  probability=st.floats(0.0, 1.0, allow_nan=False),
                  max_faults=st.just(1)),
        st.builds(FaultSpec, site=st.just("utime"),
                  err=st.sampled_from(_TRANSIENT),
                  probability=st.floats(0.0, 1.0, allow_nan=False),
                  max_faults=st.just(1)),
        st.builds(FaultSpec, site=st.just("write"), kind=st.just("torn"),
                  err=st.just(errno.EIO),
                  probability=st.floats(0.0, 1.0, allow_nan=False),
                  max_faults=st.just(1), match=st.just("pending")),
        st.builds(FaultSpec, site=st.just("listdir"),
                  kind=st.just("stale"),
                  probability=st.floats(0.0, 0.5, allow_nan=False),
                  max_faults=st.integers(1, 3)),
    ),
    max_size=3)

_PROPERTY_STATE = {}


def _property_plan(tmp_path_factory):
    """One plan + serial baseline shared across hypothesis examples
    (runs are deterministic in their specs, so reuse is sound)."""
    if "plan" not in _PROPERTY_STATE:
        plan = toy_plan(n_runs=3, seed=11)
        serial = str(tmp_path_factory.mktemp("chaos-serial")
                     / "serial.jsonl")
        execute_sweep(plan, results_path=serial)
        _PROPERTY_STATE.update(plan=plan, serial=serial)
    return _PROPERTY_STATE["plan"], _PROPERTY_STATE["serial"]


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), faults=_DRAINABLE_SPECS)
def test_any_drainable_chaos_schedule_is_byte_invisible(
        tmp_path_factory, seed, faults):
    """Property: for any seeded schedule of bounded transient faults,
    the drained campaign's checkpoint is byte-identical to serial
    execution -- the chaos layer is invisible in the science."""
    plan, serial = _property_plan(tmp_path_factory)
    tmp = tmp_path_factory.mktemp("chaos")
    dist = str(tmp / "dist.jsonl")
    _, queue = _drain_under_chaos(str(tmp / "q"), plan, seed, dist,
                                  faults=faults, quarantine_after=100)
    assert queue.all_done()
    assert filecmp.cmp(serial, dist, shallow=False)


# -- degradation ladder ---------------------------------------------------------


class TestDegradationLadder:
    def test_serial_drain_after_fleet_death(self, tmp_path):
        """One worker, zero respawn budget, a crash spec that targets
        only that worker's segments: the coordinator must shrink the
        fleet, reclaim the orphaned claim, and drain the queue itself
        -- byte-identically."""
        plan = toy_plan(n_runs=4)
        serial = str(tmp_path / "serial.jsonl")
        execute_sweep(plan, results_path=serial)
        dist = str(tmp_path / "dist.jsonl")
        io_ = FaultyIO(7, [FaultSpec(site="write", kind="crash",
                                     match="--w00", probability=1.0)])
        result = execute_distributed(
            plan, str(tmp_path / "q"), workers=1, lease_runs=2,
            lease_ttl=0.3, results_path=dist, poll_interval=0.02,
            max_respawns=0, timeout=120.0, io=io_)
        assert filecmp.cmp(serial, dist, shallow=False)
        report = result.degradation
        assert report is not None
        assert report.stages == ["shrunk-fleet", "serial-drain"]
        assert report.worker_deaths == 1
        assert report.holes == () and report.quarantined == 0
        assert "normal -> shrunk-fleet -> serial-drain" \
            in report.describe()

    def test_direct_drain_when_even_the_rescue_crashes(self, tmp_path):
        """Crash every segment write, every worker, including the
        in-process rescue: the ladder's last rung executes the
        remainder bypassing the queue, and the bytes still match."""
        plan = toy_plan(n_runs=4)
        serial = str(tmp_path / "serial.jsonl")
        execute_sweep(plan, results_path=serial)
        dist = str(tmp_path / "dist.jsonl")
        io_ = FaultyIO(7, [FaultSpec(site="write", kind="crash",
                                     match="seg-", probability=1.0)])
        result = execute_distributed(
            plan, str(tmp_path / "q"), workers=1, lease_runs=2,
            lease_ttl=0.3, results_path=dist, poll_interval=0.02,
            max_respawns=0, timeout=120.0, io=io_)
        assert filecmp.cmp(serial, dist, shallow=False)
        report = result.degradation
        assert report is not None
        assert report.stages == ["shrunk-fleet", "serial-drain",
                                 "direct-drain"]
        assert report.holes == ()
        with open(dist + ".holes.json", encoding="utf-8") as f:
            assert json.load(f)["complete"] is True


# -- the slow soak (weekly lane) ------------------------------------------------


@pytest.mark.slow
class TestChaosSoak:
    def test_seeded_soak_settles_around_poison_with_holes_named(
            self, tmp_path):
        """The acceptance campaign: a poison lease that kills every
        worker touching it, ENOSPC bursts on segment publishes, and
        rename-then-crash after publishes.  The fleet must finish the
        rest, quarantine the poison, and account for every planned run
        as either a merged record or a named hole -- never a silent
        drop."""
        plan = toy_plan(n_runs=6)      # leases 0..5; poison one of B's
        dist = str(tmp_path / "dist.jsonl")
        faults = [
            FaultSpec(site="write", kind="crash",
                      match="seg-lease-00004", probability=1.0),
            FaultSpec(site="replace", err=errno.ENOSPC,
                      match="seg-", probability=0.3, max_faults=2),
            FaultSpec(site="replace", kind="crash", match="seg-",
                      probability=0.15, max_faults=1),
        ]
        result = execute_distributed(
            plan, str(tmp_path / "q"), workers=2, lease_runs=2,
            lease_ttl=0.4, results_path=dist, poll_interval=0.02,
            timeout=180.0, io=FaultyIO(31, faults), quarantine_after=2)

        report = result.degradation
        assert report is not None
        assert report.quarantined >= 1
        assert report.worker_deaths >= 2
        holes = set(report.holes)
        assert holes, "the poison lease left no holes?"
        merged_pairs = {(key, record.run_index)
                        for key, records in result.records.items()
                        for record in records}
        for cell in plan.cells:
            for spec in cell.plan.specs:
                in_merge = (cell.key, spec.run_index) in merged_pairs
                in_holes = f"{cell.key}:{spec.run_index}" in holes
                assert in_merge != in_holes, (
                    f"{cell.key}:{spec.run_index} is neither merged "
                    "nor reported missing")
        with open(dist + ".holes.json", encoding="utf-8") as f:
            receipt = json.load(f)
        assert receipt["complete"] is False
        assert set(receipt["missing_runs"]) == holes
        assert any(q.get("lease_id") == "lease-00004"
                   for q in receipt["quarantined"])

    def test_soak_resume_completes_a_cured_campaign(self, tmp_path):
        """Quarantine is not a tombstone: delete the poison diagnosis,
        resume the queue, and the re-posted lease completes -- the
        checkpoint upgrades from partial to byte-identical."""
        plan = toy_plan(n_runs=6)
        serial = str(tmp_path / "serial.jsonl")
        execute_sweep(plan, results_path=serial)
        root = str(tmp_path / "q")
        dist = str(tmp_path / "dist.jsonl")
        faults = [FaultSpec(site="write", kind="crash",
                            match="seg-lease-00004", probability=1.0)]
        execute_distributed(
            plan, root, workers=2, lease_runs=2, lease_ttl=0.4,
            results_path=dist, poll_interval=0.02, timeout=180.0,
            io=FaultyIO(31, faults), quarantine_after=2)
        quarantine = os.path.join(root, "quarantine")
        (poison,) = os.listdir(quarantine)
        os.unlink(os.path.join(quarantine, poison))  # the cure
        result = execute_distributed(
            plan, root, workers=2, lease_runs=2, lease_ttl=0.4,
            results_path=dist, resume=True, poll_interval=0.02,
            timeout=180.0)
        assert result.degradation is None
        assert filecmp.cmp(serial, dist, shallow=False)
