"""Model-based property test: the VFS against a plain-dict reference.

Hypothesis drives random operation sequences against both the real
FFISFileSystem and a trivial in-memory model; any observable divergence
(file contents, existence, sizes) is a bug in the substrate every
experiment stands on.
"""

from typing import Dict

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import FileExists, FileNotFound
from repro.fusefs.mount import MountPoint
from repro.fusefs.vfs import FFISFileSystem

NAMES = ("a", "b", "c", "d")


class VfsModel(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.fs = FFISFileSystem()
        self.fs._set_mounted(True)
        self.mp = MountPoint(self.fs)
        self.model: Dict[str, bytearray] = {}

    name = st.sampled_from(NAMES)
    data = st.binary(max_size=48)
    offset = st.integers(0, 64)

    @rule(name=name, data=data)
    def write_whole(self, name, data):
        self.mp.write_file(f"/{name}", data)
        self.model[name] = bytearray(data)

    @rule(name=name, data=data, offset=offset)
    def pwrite(self, name, data, offset):
        if name not in self.model:
            return
        with self.mp.open(f"/{name}", "r+") as f:
            f.pwrite(data, offset)
        blob = self.model[name]
        end = offset + len(data)
        if len(blob) < end:
            blob.extend(b"\x00" * (end - len(blob)))
        blob[offset:end] = data

    @rule(name=name, data=data)
    def append(self, name, data):
        if name not in self.model:
            return
        with self.mp.open(f"/{name}", "a") as f:
            f.write(data)
        self.model[name].extend(data)

    @rule(name=name, size=st.integers(0, 64))
    def truncate(self, name, size):
        if name not in self.model:
            return
        self.mp.truncate(f"/{name}", size)
        blob = self.model[name]
        if size <= len(blob):
            del blob[size:]
        else:
            blob.extend(b"\x00" * (size - len(blob)))

    @rule(name=name)
    def remove(self, name):
        if name not in self.model:
            with pytest.raises(FileNotFound):
                self.mp.remove(f"/{name}")
            return
        self.mp.remove(f"/{name}")
        del self.model[name]

    @rule(src=name, dst=name)
    def rename(self, src, dst):
        if src == dst or src not in self.model:
            return
        if dst in self.model:
            with pytest.raises(FileExists):
                self.mp.rename(f"/{src}", f"/{dst}")
            return
        self.mp.rename(f"/{src}", f"/{dst}")
        self.model[dst] = self.model.pop(src)

    @invariant()
    def contents_match(self):
        listed = set(self.mp.listdir("/"))
        assert listed == set(self.model), (listed, set(self.model))
        for name, blob in self.model.items():
            assert self.mp.read_file(f"/{name}") == bytes(blob)
            assert self.mp.stat(f"/{name}").size == len(blob)


VfsModel.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
TestVfsModelBased = VfsModel.TestCase
