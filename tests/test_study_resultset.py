"""ResultSet queries and JSONL round-trips over the checkpoint schema.

The persistence contract: ``to_jsonl``/``from_jsonl`` speak the engine's
stamped checkpoint format -- legacy single-fault records keep the exact
v1 line layout, scenario-stamped records use v2, and loading applies the
PR 2 trailing-newline rule (an *unterminated* final line is a forgiven
mid-``emit`` kill; terminated corruption raises).
"""

import json

import pytest

from repro.core.outcomes import Outcome, RunRecord
from repro.errors import FFISError
from repro.study.resultset import UNSTAMPED_KEY, CellInfo, ResultSet


def v1_records(n=4, outcome=Outcome.BENIGN):
    return [RunRecord(run_index=i, outcome=outcome, target_instance=i + 7,
                      detail="d") for i in range(n)]


def v2_records(n=3):
    return [RunRecord(run_index=i, outcome=Outcome.SDC,
                      target_instance=i, instances=(i, i + 2),
                      scenario="k=2") for i in range(n)]


def mixed_result_set():
    return ResultSet(
        {"legacy": v1_records(), "multi": v2_records()},
        info={"legacy": CellInfo(key="legacy", campaign_id="toy/BF/v1",
                                 app_name="toy", signature="BF"),
              "multi": CellInfo(key="multi", campaign_id="toy/BF/k=2",
                                app_name="toy", signature="BF",
                                scenario="k=2")})


class TestQueries:
    def test_len_keys_records(self):
        rs = mixed_result_set()
        assert len(rs) == 7
        assert rs.keys() == ["legacy", "multi"]
        assert len(rs.records("multi")) == 3
        assert len(rs.records()) == 7
        assert "legacy" in rs and "nope" not in rs

    def test_tally_and_rates(self):
        rs = mixed_result_set()
        assert rs.tally().total == 7
        assert rs.tally("multi").counts[Outcome.SDC] == 3
        assert rs.rate(Outcome.SDC, "legacy") == 0.0
        assert rs.rates("multi")[Outcome.SDC] == 1.0
        assert set(rs.tallies()) == {"legacy", "multi"}

    def test_error_bars(self):
        bars = mixed_result_set().error_bars("multi")
        assert bars[Outcome.SDC].rate == 1.0
        assert bars[Outcome.SDC].n == 3

    def test_filter_by_outcome_and_key(self):
        rs = mixed_result_set()
        sdc = rs.filter(outcome=Outcome.SDC)
        assert sdc.keys() == ["multi"] and len(sdc) == 3
        legacy = rs.filter(key=lambda k: k == "legacy")
        assert legacy.keys() == ["legacy"]
        nothing = rs.filter(outcome=Outcome.CRASH)
        assert nothing.keys() == [] and len(nothing) == 0

    def test_filter_by_scenario_and_predicate(self):
        rs = mixed_result_set()
        assert len(rs.filter(scenario="k=2")) == 3
        assert len(rs.filter(lambda k, r: r.run_index == 0)) == 2

    def test_filter_keeps_cell_info(self):
        rs = mixed_result_set().filter(outcome=Outcome.SDC)
        assert rs.info["multi"].scenario == "k=2"

    def test_group_by_outcome(self):
        groups = mixed_result_set().group(lambda k, r: r.outcome)
        assert set(groups) == {Outcome.BENIGN, Outcome.SDC}
        assert len(groups[Outcome.SDC]) == 3
        assert groups[Outcome.SDC].keys() == ["multi"]

    def test_render_and_summary(self):
        rs = mixed_result_set()
        text = rs.render(title="grid")
        assert "grid" in text and "legacy" in text and "multi" in text
        assert "2 cells" in rs.summary()

    def test_footer_split_only_on_executed_sets(self):
        ran = ResultSet({"cell": v1_records(3)}, executed=2,
                        elapsed_seconds=1.5)
        assert "(2 executed, 1 resumed)" in ran.footer()
        derived = ran.filter(outcome=Outcome.BENIGN)
        assert "executed" not in derived.footer()
        assert derived.elapsed_seconds == 1.5
        grouped = ran.group(lambda k, r: r.outcome)[Outcome.BENIGN]
        assert "executed" not in grouped.footer()
        assert "resumed" not in mixed_result_set().footer()


class TestJsonlRoundTrip:
    def test_mixed_v1_v2_round_trip(self, tmp_path):
        rs = mixed_result_set()
        path = str(tmp_path / "results.jsonl")
        rs.to_jsonl(path)
        back = ResultSet.from_jsonl(path, info=rs.info)
        assert back.keys() == rs.keys()
        for key in rs.keys():
            assert back.cell(key) == rs.cell(key)

    def test_v1_lines_stay_v1(self, tmp_path):
        """Legacy records must keep the exact v1 layout on disk."""
        path = str(tmp_path / "results.jsonl")
        mixed_result_set().to_jsonl(path)
        with open(path, encoding="utf-8") as f:
            raws = [json.loads(line) for line in f]
        v1 = [r for r in raws if r["v"] == 1]
        v2 = [r for r in raws if r["v"] == 2]
        assert len(v1) == 4 and len(v2) == 3
        assert all("scenario" not in r and "instances" not in r for r in v1)
        assert all(r["scenario"] == "k=2" for r in v2)

    def test_from_jsonl_without_info_keys_by_stamp(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        mixed_result_set().to_jsonl(path)
        back = ResultSet.from_jsonl(path)
        assert set(back.keys()) == {"toy/BF/v1", "toy/BF/k=2"}

    def test_multi_cell_unstamped_refused(self, tmp_path):
        """Mirrors the engine's checkpoint rule: unstamped lines in a
        multi-cell file could never be attributed back, so writing them
        would silently merge cells on reload."""
        rs = ResultSet({"a": v1_records(2), "b": v2_records(1)})
        with pytest.raises(FFISError, match="no campaign_id"):
            rs.to_jsonl(str(tmp_path / "merged.jsonl"))

    def test_unstamped_lines_group_under_results(self, tmp_path):
        rs = ResultSet({"cell": v1_records(2)})  # no campaign_id
        path = str(tmp_path / "results.jsonl")
        rs.to_jsonl(path)
        back = ResultSet.from_jsonl(path)
        assert back.keys() == [UNSTAMPED_KEY]
        assert back.cell(UNSTAMPED_KEY) == v1_records(2)

    def test_records_sorted_by_run_index(self, tmp_path):
        rs = ResultSet({"cell": list(reversed(v1_records(3)))})
        path = str(tmp_path / "results.jsonl")
        rs.to_jsonl(path)
        back = ResultSet.from_jsonl(path)
        assert [r.run_index for r in back.cell(UNSTAMPED_KEY)] == [0, 1, 2]

    def test_round_trip_engine_checkpoint(self, tmp_path):
        """A checkpoint written by a real study execution loads back."""
        from repro.study import Study
        from repro.study.registry import multifault_spec

        from tests.test_scenario_determinism import ToyApp

        spec = multifault_spec(n_runs=2, seed=6, fault_model="DW",
                               k_values=(1, 2), apps=(("TOY", "TOY"),))
        path = str(tmp_path / "study.jsonl")
        plan = Study(spec, apps={"TOY": ToyApp()}).plan()
        results = plan.execute(results_path=path)
        back = ResultSet.from_jsonl(path, info=plan.cell_info())
        assert set(back.keys()) == set(results.keys())
        for key in results.keys():
            assert back.cell(key) == results.cell(key)


class TestTrailingNewlineRule:
    """The PR 2 forgiveness rule, inherited through from_jsonl."""

    def write(self, tmp_path, tail: bytes):
        rs = mixed_result_set()
        path = str(tmp_path / "results.jsonl")
        rs.to_jsonl(path)
        with open(path, "ab") as f:
            f.write(tail)
        return path

    def test_unterminated_final_line_is_forgiven(self, tmp_path):
        path = self.write(tmp_path, b'{"v": 1, "run_ind')  # no newline
        back = ResultSet.from_jsonl(path)
        assert len(back) == 7  # the torn line is dropped, nothing raises

    def test_terminated_corruption_raises(self, tmp_path):
        path = self.write(tmp_path, b'{"v": 1, "run_ind\n')
        with pytest.raises(FFISError, match="undecodable"):
            ResultSet.from_jsonl(path)

    def test_newer_schema_refused(self, tmp_path):
        record = {"v": 99, "run_index": 0, "outcome": "benign"}
        path = str(tmp_path / "future.jsonl")
        with open(path, "w", encoding="utf-8") as f:
            f.write(json.dumps(record) + "\n")
        with pytest.raises(FFISError, match="schema v99"):
            ResultSet.from_jsonl(path)
