"""Smoke and shape tests for the experiment drivers.

Campaign-heavy drivers run at reduced scale here; the benchmarks run
them at reporting scale.
"""

import numpy as np
import pytest

from repro.core.outcomes import Outcome
from repro.experiments import (
    EXPERIMENTS,
    get_experiment,
    run_figure5,
    run_figure6,
    run_figure7_cell,
    run_figure8,
    run_table1,
    run_table3,
    run_table4,
)
from repro.experiments.params import default_runs, nyx_small


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "figure5", "figure6", "figure7", "figure8", "figure9",
            "multifault"}

    def test_every_experiment_has_a_bench(self):
        for exp in EXPERIMENTS.values():
            assert exp.bench.startswith(("benchmarks/", "tests/"))

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("table99")


class TestDefaultRuns:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FI_RUNS", "77")
        assert default_runs() == 77

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FI_RUNS", raising=False)
        assert default_runs(123) == 123

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_FI_RUNS", "0")
        with pytest.raises(ValueError):
            default_runs()


class TestTable1:
    def test_rows_and_render(self):
        result = run_table1()
        assert len(result.rows) == 4
        text = result.render()
        assert "Bitflip" in text and "Dropped write" in text
        assert "SUPPRESS" in text


class TestTable3:
    def test_strided_sweep_shape(self):
        result = run_table3(byte_stride=16)
        tally = result.campaign.tally
        assert tally.rate(Outcome.BENIGN) > 0.6
        assert tally.rate(Outcome.CRASH) > 0.02
        assert "Table III" in result.render()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4(nyx_small())

    def test_exponent_bias_row(self, result):
        row = result.row("Exponent Bias")
        assert row.mass_symptom.startswith("scaled")
        assert row.location_symptom == "unchanged"
        assert "2^" in row.average_value

    def test_ard_row(self, result):
        """The ARD signature: data moved, nothing about it in mass/avg.
        At the 24^3 test scale a shifted halo can wrap the box, turning
        the uniform shift into a generic location change -- both manifest
        the paper's symptom (locations move, mass and average do not)."""
        row = result.row("ARD")
        assert row.mass_symptom == "unchanged"
        assert row.location_symptom != "unchanged"
        assert row.average_value == "unchanged"

    def test_mantissa_size_row(self, result):
        row = result.row("Mantissa Size")
        assert row.mass_symptom in ("changed", "no halos")

    def test_render_includes_paper(self, result):
        assert "paper symptom" in result.render()


class TestFigures:
    def test_figure5_mechanisms(self):
        result = run_figure5(nyx_small())
        assert result.scale_factor == pytest.approx(256.0, rel=1e-3)
        assert result.shift_cells > 0
        assert len(result.original_trace) == 24

    def test_figure6_candidates_reduced(self):
        result = run_figure6(nyx_small())
        assert result.faulty_candidates != result.golden_candidates

    def test_figure7_cell_nyx_dw(self, tiny_nyx):
        cell = run_figure7_cell(tiny_nyx, "DW", n_runs=12, seed=4)
        assert cell.tally.total == 12
        # Data-write drops are SDC; metadata/flag drops crash -- nothing
        # else can appear at this scale.
        assert cell.rate(Outcome.SDC) + cell.rate(Outcome.CRASH) == 1.0

    def test_figure8_histograms_share_bins(self):
        result = run_figure8(nyx_small(), max_tries=16)
        assert np.array_equal(result.golden.bin_edges, result.faulty.bin_edges)
        assert result.golden.n_halos > 0
        assert "Figure 8" in result.render()
