"""Tests for the CORDS-style read-path fault model (Related Work ext.)."""

import numpy as np
import pytest

from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.fault_models import ReadCorruptionFault, make_fault_model
from repro.core.injector import FaultInjector
from repro.core.outcomes import Outcome
from repro.core.signature import FaultSignature
from repro.errors import ConfigError
from repro.fusefs.interposer import PrimitiveCall
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.util.bitops import hamming_distance
from repro.util.rngstream import RngStream


class TestModel:
    def test_registered(self):
        assert isinstance(make_fault_model("RC"), ReadCorruptionFault)
        assert isinstance(make_fault_model("READ_CORRUPTION", n_bits=4),
                          ReadCorruptionFault)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReadCorruptionFault(n_bits=0)

    def test_config_steers_primitive_to_read(self):
        signature = CampaignConfig(fault_model="RC").signature()
        assert signature.primitive == "ffis_read"

    def test_noop_on_write_calls(self):
        call = PrimitiveCall("ffis_write", {"buf": b"abc", "size": 3,
                                            "offset": 0}, 0)
        ReadCorruptionFault().apply(call, np.random.default_rng(0))
        assert call.result_transform is None
        assert call.args["buf"] == b"abc"


class TestTransience:
    def test_read_sees_corruption_device_stays_clean(self):
        """The defining contrast with write-path models."""
        fs = FFISFileSystem()
        signature = FaultSignature(model=ReadCorruptionFault(),
                                   primitive="ffis_read")
        hook = FaultInjector(signature).arm(fs, 0, RngStream(1).generator())
        payload = bytes(range(64))
        with mount(fs) as mp:
            mp.write_file("/f", payload)
            first = mp.read_file("/f")     # instance 0: corrupted
            second = mp.read_file("/f")    # re-read: clean
        assert hook.fired
        assert hamming_distance(first, payload) == 2
        assert second == payload

    def test_empty_read_survives(self):
        fs = FFISFileSystem()
        signature = FaultSignature(model=ReadCorruptionFault(),
                                   primitive="ffis_read")
        FaultInjector(signature).arm(fs, 0, RngStream(1).generator())
        with mount(fs) as mp:
            mp.write_file("/f", b"")
            with mp.open("/f", "r") as f:
                assert f.pread(16, 0) == b""


class TestCampaign:
    def test_montage_read_campaign(self):
        """Montage reads intermediates constantly; RC campaigns run and
        produce more benign outcomes than persistent write flips because
        later stages re-read clean data."""
        from repro.apps.montage import MontageApplication, SkyConfig
        app = MontageApplication(seed=5, sky_config=SkyConfig(
            canvas_shape=(64, 64), tile_shape=(40, 40), n_tiles=6))
        rc = Campaign(app, CampaignConfig(fault_model="RC", n_runs=30,
                                          seed=8)).run()
        assert rc.profile.primitive == "ffis_read"
        assert rc.tally.total == 30
        assert rc.rate(Outcome.BENIGN) > 0.3

    def test_nyx_has_no_reads_during_run(self, tiny_nyx):
        """Nyx only writes during its run, so a read-targeted campaign
        must refuse (nothing to inject into) rather than silently no-op."""
        from repro.errors import FFISError
        with pytest.raises(FFISError):
            Campaign(tiny_nyx, CampaignConfig(fault_model="RC")).profile()
