"""Statistical tests of the injector's instance selection (requirement R4).

The paper requires faults be introduced *uniformly* over the dynamic
executions of the target primitive.  These tests check the selection
distribution directly (no application runs needed beyond profiling).
"""

import numpy as np
import pytest
from scipy import stats

from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.util.rngstream import RngStream


@pytest.fixture(scope="module")
def tiny_nyx_module():
    from repro.apps.nyx import FieldConfig, NyxApplication
    config = FieldConfig(shape=(16, 16, 16), n_halos=2,
                         halo_amplitude=(800.0, 1500.0),
                         halo_radius=(0.6, 0.8))
    return NyxApplication(seed=77, field_config=config, min_cells=3)


def selected_instances(app, fault_model: str, n: int, seed: int,
                       phase=None) -> np.ndarray:
    """Reproduce the campaign's instance draws without running the app."""
    campaign = Campaign(app, CampaignConfig(fault_model=fault_model,
                                            n_runs=n, seed=seed, phase=phase))
    profile = campaign.profile()
    window = profile.window(phase)
    stream = RngStream(seed, app.name, campaign.signature.model.name,
                       phase or "all")
    picker = stream.child("instances").generator()
    return np.array([int(picker.integers(window.start, window.stop))
                     for _ in range(n)]), window


class TestUniformity:
    def test_instances_cover_the_window(self, tiny_nyx_module):
        draws, window = selected_instances(tiny_nyx_module, "BF", 600, seed=1)
        assert draws.min() == window.start
        assert draws.max() == window.stop - 1
        assert set(np.unique(draws)) == set(range(window.start, window.stop))

    def test_chi_square_uniform(self, tiny_nyx_module):
        """A chi-square test must not reject uniformity at alpha=0.001."""
        draws, window = selected_instances(tiny_nyx_module, "BF", 1200, seed=2)
        counts = np.bincount(draws, minlength=len(window))
        _, p_value = stats.chisquare(counts)
        assert p_value > 0.001

    def test_matches_campaign_records(self, tiny_nyx_module):
        """The reproduction above is exactly what the campaign draws."""
        config = CampaignConfig(fault_model="DW", n_runs=5, seed=9)
        result = Campaign(tiny_nyx_module, config).run()
        draws, _ = selected_instances(tiny_nyx_module, "DW", 5, seed=9)
        assert [r.target_instance for r in result.records] == draws.tolist()


class TestPhaseRestriction:
    def test_phase_limits_instances(self):
        from repro.apps.montage import MontageApplication, SkyConfig
        app = MontageApplication(seed=5, sky_config=SkyConfig(
            canvas_shape=(64, 64), tile_shape=(40, 40), n_tiles=6))
        config = CampaignConfig(fault_model="DW", n_runs=10, seed=3,
                                phase="mAdd")
        campaign = Campaign(app, config)
        profile = campaign.profile()
        window = profile.window("mAdd")
        result = campaign.run()
        for record in result.records:
            assert window.start <= record.target_instance < window.stop
            assert record.phase == "mAdd"
