"""The capture-then-fork contract of the parallel executor.

Three load-bearing properties of the PR:

* **zero-pickle tasks** -- a task submission is a ``(start, stop)``
  index range whose pickle size is *independent* of how large the
  golden images in the execution payload are.  Under ``fork`` nothing
  but a registry token crosses the pipe at all; under spawn the payload
  ships exactly once per worker through the initializer.
* **start-method parity** -- fork, spawn, and serial execution produce
  identical records for the same plan.
* **adaptive chunking** -- ``chunk_size=None`` spreads tiny plans
  across the workers and caps runaway chunks on huge ones.
"""

from __future__ import annotations

import multiprocessing
import pickle
from types import SimpleNamespace

import pytest

from repro.apps.nyx import FieldConfig, NyxApplication
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.engine import executor as executor_module
from repro.core.engine.executor import ParallelExecutor, SerialExecutor
from repro.errors import ConfigError

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
HAVE_SPAWN = "spawn" in multiprocessing.get_all_start_methods()


def tiny_nyx() -> NyxApplication:
    return NyxApplication(seed=7, field_config=FieldConfig(
        shape=(12, 12, 12), n_halos=2, halo_amplitude=(800.0, 1500.0),
        halo_radius=(0.6, 0.8)), min_cells=3)


# -- zero-pickle task payloads ----------------------------------------------------


class _Future:
    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class _RecordingPool:
    """Stands in for ProcessPoolExecutor: runs tasks inline and records
    the pickled size of everything that would have crossed the pipe."""

    last = None

    def __init__(self, max_workers, mp_context=None, initializer=None,
                 initargs=()):
        self.initargs_size = len(pickle.dumps(initargs))
        initializer(*initargs)
        self.submit_sizes = []
        _RecordingPool.last = self

    def submit(self, fn, *args):
        self.submit_sizes.append(len(pickle.dumps((fn, args))))
        return _Future(fn(*args))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestTaskPayloadSize:
    def _sizes(self, monkeypatch, start_method, payload_bytes):
        """Run 40 fake specs against a context holding *payload_bytes*
        of golden-image stand-in; return the recorded pickle sizes."""
        monkeypatch.setattr(executor_module, "ProcessPoolExecutor",
                            _RecordingPool)
        import repro.core.engine.runner as runner
        monkeypatch.setattr(runner, "execute_run_spec",
                            lambda context, spec: spec)
        plan = SimpleNamespace(specs=list(range(40)),
                               context={"golden_image": b"x" * payload_bytes})
        executor = ParallelExecutor(workers=2, chunk_size=4,
                                    start_method=start_method)
        records = list(executor.map(plan))
        assert records == plan.specs
        pool = _RecordingPool.last
        return pool.initargs_size, tuple(pool.submit_sizes)

    @pytest.mark.skipif(not HAVE_FORK, reason="fork not available")
    def test_fork_tasks_are_ranges_independent_of_image_size(
            self, monkeypatch):
        init_small, tasks_small = self._sizes(monkeypatch, "fork", 10_000)
        init_big, tasks_big = self._sizes(monkeypatch, "fork", 10_000_000)
        # Identical wire traffic for a 1000x larger golden image.
        assert (init_small, tasks_small) == (init_big, tasks_big)
        # Fork ships a registry token, never the payload.
        assert init_big < 256
        assert tasks_big and max(tasks_big) < 256

    @pytest.mark.skipif(not HAVE_SPAWN, reason="spawn not available")
    def test_spawn_ships_payload_once_and_tasks_stay_ranges(
            self, monkeypatch):
        init_small, tasks_small = self._sizes(monkeypatch, "spawn", 10_000)
        init_big, tasks_big = self._sizes(monkeypatch, "spawn", 10_000_000)
        # The payload rides the initializer (once per worker), so its
        # size tracks the image...
        assert init_small > 10_000
        assert init_big > 10_000_000
        # ...but task submissions are still constant-size ranges.
        assert tasks_small == tasks_big
        assert max(tasks_big) < 256


# -- start-method parity ----------------------------------------------------------


class TestStartMethodParity:
    def plan(self):
        campaign = Campaign(tiny_nyx(), CampaignConfig(
            fault_model="DW", n_runs=6, seed=5))
        return campaign.plan()

    @pytest.mark.skipif(not (HAVE_FORK and HAVE_SPAWN),
                        reason="needs both fork and spawn")
    def test_fork_and_spawn_records_identical_to_serial(self):
        plan = self.plan()
        serial = list(SerialExecutor().map(plan))
        fork = list(ParallelExecutor(
            workers=2, start_method="fork").map(plan))
        spawn = list(ParallelExecutor(
            workers=2, start_method="spawn").map(plan))
        assert fork == serial
        assert spawn == serial

    def test_unknown_start_method_is_config_error(self):
        with pytest.raises(ConfigError, match="not available"):
            ParallelExecutor(workers=2, start_method="no-such-method")


# -- adaptive chunking ------------------------------------------------------------


class TestAdaptiveChunking:
    def test_tiny_plans_spread_across_workers(self):
        assert ParallelExecutor(workers=2)._chunk_for(4) == 1
        assert ParallelExecutor(workers=4)._chunk_for(10) == 1

    def test_quarter_of_per_worker_share(self):
        assert ParallelExecutor(workers=2)._chunk_for(64) == 8
        assert ParallelExecutor(workers=4)._chunk_for(640) == 40

    def test_adaptive_chunk_is_capped(self):
        executor = ParallelExecutor(workers=2)
        assert executor._chunk_for(10_000) == \
            ParallelExecutor.MAX_ADAPTIVE_CHUNK_SIZE

    def test_explicit_chunk_size_wins(self):
        assert ParallelExecutor(workers=2, chunk_size=3)._chunk_for(10_000) == 3

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigError, match="chunk_size"):
            ParallelExecutor(workers=2, chunk_size=0)


# -- the config knob --------------------------------------------------------------


class TestChunkSizeConfig:
    def test_default_is_adaptive(self):
        assert CampaignConfig().chunk_size is None

    def test_from_dict_accepts_chunk_size(self):
        config = CampaignConfig.from_dict(
            {"fault_model": "DW", "workers": 2, "chunk_size": 16})
        assert config.chunk_size == 16

    def test_invalid_chunk_size_is_config_error(self):
        with pytest.raises(ConfigError, match="chunk_size"):
            CampaignConfig(chunk_size=0)
