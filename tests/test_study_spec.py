"""Validation and serialization of the declarative StudySpec."""

import pytest

from repro.errors import ConfigError
from repro.study.spec import (
    ModelSpec,
    ScenarioSpec,
    StudySpec,
    TargetSpec,
    load_spec,
)


def grid_spec(**overrides):
    base = dict(
        name="grid",
        targets=(TargetSpec(app="nyx", label="NYX"),
                 TargetSpec(app="montage", label="MT1", phase="mAdd")),
        models=(ModelSpec(model="BF"),
                ModelSpec(model="SW", params={"fraction": 0.25})),
        scenarios=(ScenarioSpec(), ScenarioSpec(scenario="k=3", label="k3")),
        runs=10, seed=7)
    base.update(overrides)
    return StudySpec(**base)


class TestValidation:
    def test_needs_targets(self):
        with pytest.raises(ConfigError, match="at least one target"):
            StudySpec(name="empty", targets=())

    def test_bad_order(self):
        with pytest.raises(ConfigError, match="order"):
            grid_spec(order="diagonal")

    def test_bad_runs_and_workers(self):
        with pytest.raises(ConfigError, match="runs"):
            grid_spec(runs=0)
        with pytest.raises(ConfigError, match="workers"):
            grid_spec(workers=0)

    def test_resume_requires_out(self):
        with pytest.raises(ConfigError, match="resume"):
            grid_spec(resume=True)

    def test_bad_scenario_string(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(scenario="quintuple-fault")

    def test_bad_fault_model(self):
        with pytest.raises(ConfigError, match="fault model"):
            ModelSpec(model="ZZ")
        with pytest.raises(ConfigError, match="fault model"):
            ModelSpec(model="BF", params={"no_such_knob": 1})

    def test_metadata_target_rejects_phase(self):
        with pytest.raises(ConfigError, match="phase"):
            TargetSpec(app="nyx", kind="metadata", phase="mAdd")

    def test_targeted_mode_needs_bits(self):
        with pytest.raises(ConfigError, match="bits"):
            TargetSpec(app="nyx", kind="metadata", mode="targeted")
        with pytest.raises(ConfigError, match="targeted"):
            TargetSpec(app="nyx", kind="metadata",
                       bits=(("Exponent Bias", 0, 3),))

    def test_malformed_bits_are_config_errors(self):
        """A TOML typo must surface as ConfigError (clean CLI message),
        never a raw ValueError traceback."""
        with pytest.raises(ConfigError, match="triplets"):
            TargetSpec(app="nyx", kind="metadata", mode="targeted",
                       bits=(("ARD", 0),))
        with pytest.raises(ConfigError, match="triplets"):
            TargetSpec(app="nyx", kind="metadata", mode="targeted",
                       bits=(("ARD", "zero", 1),))

    def test_fault_target_rejects_metadata_knobs(self):
        with pytest.raises(ConfigError, match="metadata"):
            TargetSpec(app="nyx", mode="all-bits")
        with pytest.raises(ConfigError, match="metadata"):
            TargetSpec(app="nyx", bits=(("x", 0, 0),))
        with pytest.raises(ConfigError, match="metadata"):
            TargetSpec(app="nyx", stride=8)

    def test_duplicate_cell_keys_rejected(self):
        with pytest.raises(ConfigError, match="duplicate cell keys"):
            StudySpec(name="dupes",
                      targets=(TargetSpec(app="nyx"), TargetSpec(app="nyx")))


class TestCellEnumeration:
    def test_target_major_order_and_keys(self):
        keys = [cell.key for cell in grid_spec(order="target").cells()]
        assert keys == [
            "NYX-BF", "NYX-BF-k3", "NYX-SW", "NYX-SW-k3",
            "MT1-BF", "MT1-BF-k3", "MT1-SW", "MT1-SW-k3"]

    def test_model_major_order(self):
        keys = [cell.key for cell in grid_spec(order="model").cells()]
        assert keys == [
            "NYX-BF", "NYX-BF-k3", "MT1-BF", "MT1-BF-k3",
            "NYX-SW", "NYX-SW-k3", "MT1-SW", "MT1-SW-k3"]

    def test_empty_labels_drop_axis_from_key(self):
        spec = grid_spec(models=(ModelSpec(model="DW", label=""),),
                         scenarios=(ScenarioSpec(scenario="k=2", label="k2"),
                                    ScenarioSpec(scenario="k=4", label="k4")))
        assert [c.key for c in spec.cells()] == [
            "NYX-k2", "NYX-k4", "MT1-k2", "MT1-k4"]

    def test_legacy_scenario_key_part_is_empty(self):
        assert ScenarioSpec().key_part == ""
        assert ScenarioSpec(scenario="k=3").key_part == "k=3"

    def test_metadata_cells_do_not_cross_axes(self):
        spec = StudySpec(
            name="mixed", order="model",
            targets=(TargetSpec(app="nyx", label="NYX"),
                     TargetSpec(app="nyx-small", label="meta",
                                kind="metadata", stride=16)),
            models=(ModelSpec(model="BF"), ModelSpec(model="DW")))
        keys = [c.key for c in spec.cells()]
        assert keys == ["meta", "NYX-BF", "NYX-DW"]
        meta = spec.cells()[0]
        assert meta.model is None and meta.scenario is None


class TestDictRoundTrip:
    def test_round_trip_equality(self):
        spec = grid_spec()
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_metadata_and_bits_round_trip(self):
        spec = StudySpec(
            name="t4",
            targets=(TargetSpec(app="nyx", kind="metadata", mode="targeted",
                                bits=(("Exponent Bias", 0, 3),
                                      ("Mantissa Size", 1, 7))),))
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown StudySpec keys"):
            StudySpec.from_dict({"name": "x", "tragets": []})
        with pytest.raises(ConfigError, match="unknown TargetSpec keys"):
            StudySpec.from_dict(
                {"name": "x", "targets": [{"app": "nyx", "mdoe": "all"}]})

    def test_none_values_omitted(self):
        raw = grid_spec(runs=None).to_dict()
        assert "runs" not in raw
        assert "out" not in raw
        assert "phase" not in raw["targets"][0]


class TestTomlRoundTrip:
    def test_round_trip_equality(self):
        spec = grid_spec()
        text = spec.to_toml()
        assert StudySpec.from_toml(text) == spec

    def test_quoting_and_params(self):
        spec = StudySpec(
            name='has "quotes" and \\slashes\\',
            targets=(TargetSpec(app="nyx"),),
            models=(ModelSpec(model="SW", params={"fraction": 0.5}),))
        assert StudySpec.from_toml(spec.to_toml()) == spec

    def test_bits_round_trip(self):
        spec = StudySpec(
            name="t4",
            targets=(TargetSpec(app="nyx", kind="metadata", mode="targeted",
                                bits=(("Exponent Bias", 0, 3),)),))
        assert StudySpec.from_toml(spec.to_toml()) == spec

    def test_invalid_toml_is_config_error(self):
        with pytest.raises(ConfigError, match="invalid study TOML"):
            StudySpec.from_toml("= not toml =")

    def test_load_spec_file(self, tmp_path):
        spec = grid_spec()
        path = tmp_path / "spec.toml"
        path.write_text(spec.to_toml(), encoding="utf-8")
        assert load_spec(str(path)) == spec


class TestWithKnobs:
    def test_overrides_apply(self):
        spec = grid_spec().with_knobs(runs=99, seed=1, workers=2,
                                      out="x.jsonl", resume=True)
        assert (spec.runs, spec.seed, spec.workers) == (99, 1, 2)
        assert spec.out == "x.jsonl" and spec.resume is True

    def test_none_keeps_existing(self):
        spec = grid_spec()
        assert spec.with_knobs() is spec
        assert spec.with_knobs(runs=None).runs == 10

    def test_registered_studies_build_and_serialize(self):
        from repro.study.registry import STUDIES

        for definition in STUDIES.values():
            spec = definition.build()
            assert StudySpec.from_toml(spec.to_toml()) == spec
            assert len(spec.cells()) >= 1
