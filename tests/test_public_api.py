"""The curated top-level surface and its deprecation shims."""

import subprocess
import sys

import pytest

import repro


class TestStableSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_study_api_at_top_level(self):
        from repro import ModelSpec, ResultSet, Study, StudySpec, TargetSpec

        spec = StudySpec(name="surface",
                         targets=(TargetSpec(app="nyx"),),
                         models=(ModelSpec(model="BF"),), runs=1)
        assert Study(spec).spec is spec
        assert ResultSet({}).keys() == []

    def test_dir_includes_lazy_names(self):
        listing = dir(repro)
        assert "Campaign" in listing and "StudySpec" in listing
        assert "SweepPlan" in listing  # deprecated but discoverable

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing


class TestDeprecatedEngineAliases:
    def test_alias_warns_and_still_works(self):
        import repro.core.engine as engine

        with pytest.warns(DeprecationWarning, match="repro.core.engine"):
            assert repro.SweepPlan is engine.SweepPlan
        with pytest.warns(DeprecationWarning):
            assert repro.execute_sweep is engine.execute_sweep

    def test_stable_names_do_not_warn(self, recwarn):
        repro.Campaign
        repro.StudySpec
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestLazyImport:
    def test_import_repro_is_light(self):
        """`import repro` must not pull numpy or the app stack."""
        code = (
            "import sys, repro\n"
            "assert repro.__version__\n"
            "assert 'numpy' not in sys.modules, 'import repro pulled numpy'\n"
            "assert 'repro.apps' not in sys.modules\n")
        subprocess.run([sys.executable, "-c", code], check=True,
                       env={"PYTHONPATH": "src"}, cwd=".")
