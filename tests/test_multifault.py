"""Tests for the multifault driver (outcome rates vs fault count k).

The driver is a fused sweep like figure7: per-app fault-free work runs
once across all k cells, the k=1 cell is the legacy single-fault
baseline (bit-identical to a solo campaign), and the whole grid
checkpoints to one multiplexed JSONL file with kill/resume.
"""

import pytest

from repro.analysis.stats import per_k_tallies, sdc_vs_k
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.engine import load_records_by_campaign
from repro.core.outcomes import Outcome, RunRecord
from repro.experiments.multifault import plan_multifault, run_multifault
from repro.experiments.registry import EXPERIMENTS
from repro.fusefs.vfs import FFISFileSystem

from tests.test_scenario_determinism import ToyApp

K_VALUES = (1, 2, 4)


class CountingFsFactory:
    def __init__(self):
        self.count = 0

    def __call__(self) -> FFISFileSystem:
        self.count += 1
        return FFISFileSystem()


def tiny_grid(**kwargs):
    return run_multifault(n_runs=3, seed=6, fault_model="DW",
                          k_values=K_VALUES,
                          apps={"TOY": ToyApp(), "ALT": ToyApp(payload_seed=9)},
                          **kwargs)


class TestMultifaultDriver:
    def test_grid_shape_and_shared_fault_free_work(self):
        factory = CountingFsFactory()
        result = tiny_grid(fs_factory=factory)
        assert set(result.cells) == {f"{app}-k{k}" for app in ("TOY", "ALT")
                                     for k in K_VALUES}
        # 2 apps x 1 golden capture (the profile is derived from it,
        # not re-executed) + 6 cells x 3 runs.
        assert factory.count == 2 * 1 + 6 * 3
        assert result.fault_free_runs == 2

    def test_k1_cell_is_the_legacy_single_fault_baseline(self):
        result = tiny_grid()
        solo = Campaign(ToyApp(), CampaignConfig(
            fault_model="DW", n_runs=3, seed=6)).run()
        assert result.cells["TOY-k1"].records == solo.records

    def test_higher_k_cells_are_scenario_stamped(self):
        result = tiny_grid()
        for record in result.cells["TOY-k4"].records:
            assert record.scenario == "k=4"
            assert 1 <= len(record.instances) <= 4
        assert result.cells["TOY-k4"].scenario == "k=4"
        assert result.cells["TOY-k1"].scenario is None

    def test_kill_resume_round_trip(self, tmp_path):
        """The acceptance-criterion path: kill the fused sweep mid-grid,
        resume from its multiplexed checkpoint, and reproduce the
        uninterrupted records exactly."""
        path = str(tmp_path / "multifault.jsonl")
        uninterrupted = tiny_grid()

        class Kill(Exception):
            pass

        def explode(done, total):
            if done >= 8:
                raise Kill()

        with pytest.raises(Kill):
            tiny_grid(results_path=path, progress=explode)
        assert sum(len(v) for v in
                   load_records_by_campaign(path).values()) == 8

        resumed = tiny_grid(results_path=path, resume=True)
        for label, cell in uninterrupted.cells.items():
            assert resumed.cells[label].records == cell.records
        groups = load_records_by_campaign(path)
        assert len(groups) == 6
        assert all(len(records) == 3 for records in groups.values())

    def test_render_includes_curves(self):
        result = tiny_grid()
        text = result.render()
        assert "SDC rate vs fault count" in text
        assert "SDC @ k=4" in text
        assert "TOY-k2" in text

    def test_plan_cells_in_label_order(self):
        plan, campaigns, _ = plan_multifault(
            n_runs=2, seed=6, k_values=K_VALUES, apps={"TOY": ToyApp()})
        assert [cell.key for cell in plan.cells] == list(campaigns)
        assert list(campaigns) == ["TOY-k1", "TOY-k2", "TOY-k4"]

    def test_registered_experiment(self):
        exp = EXPERIMENTS["multifault"]
        assert exp.driver is run_multifault
        import inspect
        assert "results_path" in inspect.signature(exp.driver).parameters


class TestPerKStats:
    def records(self):
        out = []
        for i in range(8):
            out.append(RunRecord(i, Outcome.BENIGN))            # k=1 legacy
        for i in range(8):
            out.append(RunRecord(i, Outcome.SDC if i < 4 else Outcome.BENIGN,
                                 instances=(i, i + 1), scenario="k=2"))
        out.append(RunRecord(0, Outcome.SDC, instances=(3, 4, 5),
                             scenario="burst=3"))
        return out

    def test_per_k_tallies_group_by_nominal_fault_count(self):
        tallies = per_k_tallies(self.records())
        assert sorted(tallies) == [1, 2, 3]
        assert tallies[1].total == 8
        assert tallies[2].counts[Outcome.SDC] == 4
        assert tallies[3].total == 1

    def test_collapsed_draws_keep_their_nominal_k(self):
        """A k=3 plan whose draws collided down to 2 distinct points is
        still a k=3 measurement."""
        record = RunRecord(0, Outcome.SDC, instances=(5, 9), scenario="k=3")
        assert sorted(per_k_tallies([record])) == [3]

    def test_sdc_vs_k_curve(self):
        curve = sdc_vs_k(self.records())
        assert list(curve) == [1, 2, 3]
        assert curve[1].rate == 0.0
        assert curve[2].rate == pytest.approx(0.5)
        assert curve[3].rate == 1.0
        # Pre-grouped tallies are accepted too.
        again = sdc_vs_k(per_k_tallies(self.records()))
        assert {k: e.rate for k, e in again.items()} == \
            {k: e.rate for k, e in curve.items()}
