"""The Study compile/execute path against the pre-redesign drivers.

Two load-bearing contracts of the API redesign:

* **byte-identical checkpoints** -- ``figure7``, ``multifault``, and
  ``table3`` executed through their registered ``StudySpec``\\ s write
  JSONL checkpoints byte-identical to the pre-redesign drivers.  The
  committed fixtures under ``tests/data/study_*.jsonl`` were generated
  by the pre-study drivers and whole-file compared here on every run.
* **specs are the study** -- a spec survives spec -> TOML -> spec ->
  ``plan()`` with a record-identical run, so a study shipped as a TOML
  file reproduces exactly.
"""

import filecmp
import os

import pytest

from repro.apps.montage import MontageApplication, SkyConfig
from repro.apps.nyx import FieldConfig, NyxApplication
from repro.errors import ConfigError
from repro.experiments.figure7 import run_figure7
from repro.experiments.multifault import run_multifault
from repro.experiments.table3 import run_table3
from repro.study import Study, StudySpec
from repro.study.registry import (
    figure7_spec,
    get_study,
    multifault_spec,
)
from repro.study.spec import ModelSpec, ScenarioSpec, TargetSpec

from tests.test_scenario_determinism import DATA_DIR, ToyApp

FIGURE7_FIXTURE = os.path.join(DATA_DIR, "study_figure7.jsonl")
MULTIFAULT_FIXTURE = os.path.join(DATA_DIR, "study_multifault.jsonl")
TABLE3_FIXTURE = os.path.join(DATA_DIR, "study_table3.jsonl")


def fixture_nyx() -> NyxApplication:
    return NyxApplication(seed=77, field_config=FieldConfig(
        shape=(16, 16, 16), n_halos=2, halo_amplitude=(800.0, 1500.0),
        halo_radius=(0.6, 0.8)), min_cells=3)


def fixture_montage() -> MontageApplication:
    return MontageApplication(seed=11, sky_config=SkyConfig(
        canvas_shape=(64, 64), tile_shape=(32, 32), n_tiles=6, n_stars=40))


def toy_apps():
    return {"TOY": ToyApp(), "ALT": ToyApp(payload_seed=9)}


class TestGoldenFixtures:
    """The acceptance criterion: registered specs == old drivers, byte
    for byte, on the multiplexed JSONL checkpoints."""

    def test_figure7_study_checkpoint_matches_pre_redesign_fixture(
            self, tmp_path):
        spec = figure7_spec(n_runs=2, seed=4, app_labels=("NYX", "MT"))
        path = str(tmp_path / "figure7.jsonl")
        Study(spec, apps={"nyx": fixture_nyx(),
                          "montage": fixture_montage()}) \
            .run(results_path=path)
        assert filecmp.cmp(FIGURE7_FIXTURE, path, shallow=False)

    def test_figure7_driver_checkpoint_matches_fixture(self, tmp_path):
        path = str(tmp_path / "figure7.jsonl")
        result = run_figure7(n_runs=2, seed=4,
                             apps={"NYX": fixture_nyx(),
                                   "MT": fixture_montage()},
                             results_path=path)
        assert filecmp.cmp(FIGURE7_FIXTURE, path, shallow=False)
        # 15 cells (NYX + MT1..4 across BF/SW/DW), one fault-free
        # golden capture per app (profiles are derived from it).
        assert len(result.cells) == 15
        assert result.fault_free_runs == 2

    def test_multifault_study_checkpoint_matches_fixture(self, tmp_path):
        spec = multifault_spec(n_runs=3, seed=6, fault_model="DW",
                               k_values=(1, 2, 4),
                               apps=(("TOY", "TOY"), ("ALT", "ALT")))
        path = str(tmp_path / "multifault.jsonl")
        Study(spec, apps=toy_apps()).run(results_path=path)
        assert filecmp.cmp(MULTIFAULT_FIXTURE, path, shallow=False)

    def test_multifault_driver_checkpoint_matches_fixture(self, tmp_path):
        path = str(tmp_path / "multifault.jsonl")
        run_multifault(n_runs=3, seed=6, fault_model="DW", k_values=(1, 2, 4),
                       apps=toy_apps(), results_path=path)
        assert filecmp.cmp(MULTIFAULT_FIXTURE, path, shallow=False)

    def test_table3_driver_checkpoint_matches_fixture(self, tmp_path):
        path = str(tmp_path / "table3.jsonl")
        run_table3(byte_stride=128, seed=0, results_path=path)
        assert filecmp.cmp(TABLE3_FIXTURE, path, shallow=False)

    def test_table3_registered_study_matches_fixture(self, tmp_path):
        definition = get_study("table3")
        spec = definition.build(byte_stride=128, seed=0)
        path = str(tmp_path / "table3.jsonl")
        results = Study(spec).run(results_path=path)
        assert filecmp.cmp(TABLE3_FIXTURE, path, shallow=False)
        assert "Table III" in definition.render(results)


class TestSpecTomlPlanRoundTrip:
    """spec -> TOML -> spec -> plan() runs record-identically."""

    def spec(self):
        return StudySpec(
            name="toml-round-trip",
            targets=(TargetSpec(app="TOY", label="TOY"),
                     TargetSpec(app="ALT", label="ALT")),
            models=(ModelSpec(model="DW"), ModelSpec(model="BF")),
            scenarios=(ScenarioSpec(), ScenarioSpec(scenario="k=2")),
            runs=3, seed=6)

    def test_record_identical_run(self, tmp_path):
        spec = self.spec()
        reloaded = StudySpec.from_toml(spec.to_toml())
        assert reloaded == spec
        first = Study(spec, apps=toy_apps()).run()
        second = Study(reloaded, apps=toy_apps()).run()
        assert first.keys() == second.keys()
        for key in first.keys():
            assert first.cell(key) == second.cell(key)

    def test_checkpoint_identical_through_file(self, tmp_path):
        spec = self.spec()
        path = tmp_path / "spec.toml"
        path.write_text(spec.to_toml(), encoding="utf-8")
        from repro.study.spec import load_spec

        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        Study(spec, apps=toy_apps()).run(results_path=a)
        Study(load_spec(str(path)), apps=toy_apps()).run(results_path=b)
        assert filecmp.cmp(a, b, shallow=False)


class TestStudyExecution:
    def test_shared_fault_free_work_across_cells(self):
        spec = StudySpec(
            name="shared",
            targets=(TargetSpec(app="TOY", label="A"),),
            models=(ModelSpec(model="DW"), ModelSpec(model="BF")),
            runs=2, seed=1)
        counting = {"n": 0}

        class CountingToy(ToyApp):
            def execute(self, mp):
                counting["n"] += 1
                return super().execute(mp)

        results = Study(spec, apps={"TOY": CountingToy()}).run()
        # One app instance: a single golden capture (profile derived
        # from it), plus 2 cells x 2 runs.
        assert results.fault_free_runs == 1
        assert counting["n"] == 1 + 4
        assert set(results.keys()) == {"A-DW", "A-BF"}

    def test_kill_resume_round_trip(self, tmp_path):
        spec = multifault_spec(n_runs=3, seed=6, fault_model="DW",
                               k_values=(1, 2), apps=(("TOY", "TOY"),))
        path = str(tmp_path / "study.jsonl")

        class Kill(Exception):
            pass

        def explode(done, total):
            if done >= 3:
                raise Kill()

        uninterrupted = Study(spec, apps={"TOY": ToyApp()}).run()
        with pytest.raises(Kill):
            Study(spec, apps={"TOY": ToyApp()}).run(results_path=path,
                                                    progress=explode)
        resumed = Study(spec, apps={"TOY": ToyApp()}).run(results_path=path,
                                                          resume=True)
        assert resumed.executed < len(resumed)
        for key in uninterrupted.keys():
            assert resumed.cell(key) == uninterrupted.cell(key)

    def test_spec_engine_knobs_drive_execution(self, tmp_path):
        path = str(tmp_path / "knobs.jsonl")
        spec = StudySpec(name="knobs",
                         targets=(TargetSpec(app="TOY"),),
                         models=(ModelSpec(model="DW"),),
                         runs=2, seed=3, out=path)
        results = Study(spec, apps={"TOY": ToyApp()}).run()
        assert os.path.exists(path)
        assert results.executed == 2

    def test_unknown_app_id_is_config_error(self):
        spec = StudySpec(name="x", targets=(TargetSpec(app="no-such-app"),),
                         runs=1)
        with pytest.raises(ConfigError, match="unknown application id"):
            Study(spec).plan()

    def test_figure7_unknown_apps_label_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown figure7 app labels"):
            run_figure7(n_runs=1, apps={"NYX": fixture_nyx(),
                                        "CUSTOM": fixture_nyx()})

    def test_describe_lists_cells(self):
        spec = multifault_spec(n_runs=2, seed=6, fault_model="DW",
                               k_values=(1, 2), apps=(("TOY", "TOY"),))
        plan = Study(spec, apps={"TOY": ToyApp()}).plan()
        text = plan.describe()
        assert "TOY-k1" in text and "TOY-k2" in text
        assert "4 runs" in text  # 2 cells x 2 runs

    def test_targeted_metadata_cell_reports_its_mode(self):
        from repro.experiments.params import nyx_small
        from repro.study.registry import table4_spec

        plan = Study(table4_spec(), apps={"nyx": nyx_small()}).plan()
        info = plan.cell_info()["nyx"]
        assert info.signature == "metadata[targeted]"
        assert "metadata[targeted]" in info.campaign_id

    def test_campaign_results_adapter(self):
        spec = StudySpec(name="adapter",
                         targets=(TargetSpec(app="TOY"),),
                         models=(ModelSpec(model="DW"),),
                         runs=2, seed=3)
        plan = Study(spec, apps={"TOY": ToyApp()}).plan()
        results = plan.execute()
        (result,) = plan.campaign_results(results).values()
        assert result.profile is not None and result.golden is not None
        assert len(result.records) == 2
        assert result.summary().startswith("toy/DW")
