"""Tests for the detection/auto-correction methodology (Sec. V-A)."""

import numpy as np
import pytest

from repro.mhdf5.datatype import MantissaNorm
from repro.mhdf5.reader import Hdf5Reader
from repro.mhdf5.repair import (
    DiagnosisKind,
    diagnose_dataset,
    repair_file,
)
from repro.mhdf5.writer import write_file


@pytest.fixture
def written(mp, rng):
    """A mean-1 field written to mini-HDF5 (the Nyx invariant)."""
    rho = rng.lognormal(0, 0.5, (8, 8, 8))
    rho /= rho.mean()
    rho = rho.astype(np.float32)
    rho /= np.float32(rho.mean(dtype=np.float64))
    result = write_file(mp, "/f.h5", [("density", rho)])
    return result, rho


def corrupt_field(mp, result, substring, bit, byte=0):
    span = next(s for s in result.fieldmap if substring in s.name)
    data = bytearray(mp.read_file("/f.h5"))
    data[span.start + byte] ^= 1 << bit
    with mp.open("/f.h5", "r+") as f:
        f.pwrite(bytes(data[span.start + byte : span.start + byte + 1]),
                 span.start + byte)


class TestDiagnosis:
    def test_clean_file_is_ok(self, mp, written):
        result, _ = written
        d = diagnose_dataset(mp, "/f.h5", "density")
        assert d.kind is DiagnosisKind.OK
        assert d.observed_mean == pytest.approx(1.0, rel=1e-4)

    def test_exponent_bias_diagnosed(self, mp, written):
        result, _ = written
        corrupt_field(mp, result, "Exponent Bias", 3)   # 127 -> 119: x2^8
        d = diagnose_dataset(mp, "/f.h5", "density")
        assert d.kind is DiagnosisKind.EXPONENT_BIAS
        assert d.observed_mean == pytest.approx(256.0, rel=1e-3)

    def test_mantissa_norm_diagnosed_as_geometry(self, mp, written):
        result, _ = written
        corrupt_field(mp, result, "Mantissa Normalization", 5)
        d = diagnose_dataset(mp, "/f.h5", "density")
        assert d.kind is DiagnosisKind.FLOAT_GEOMETRY
        assert "normalization" in d.detail

    def test_mantissa_size_diagnosed_as_geometry(self, mp, written):
        result, _ = written
        corrupt_field(mp, result, "Mantissa Size", 0)
        d = diagnose_dataset(mp, "/f.h5", "density")
        assert d.kind is DiagnosisKind.FLOAT_GEOMETRY

    def test_ard_diagnosed_structurally(self, mp, written):
        """The average stays 1 under an ARD shift -- only the structural
        ARD == metadata-size check can see it (the paper's point)."""
        result, _ = written
        corrupt_field(mp, result, "Address of Raw Data", 5)
        d = diagnose_dataset(mp, "/f.h5", "density")
        assert d.kind is DiagnosisKind.ARD_MISMATCH

    def test_data_corruption_is_unknown(self, mp, written):
        """A mean shift with intact metadata is not a metadata fault."""
        result, rho = written
        start = result.plan.datasets[0].data_address
        with mp.open("/f.h5", "r+") as f:
            f.pwrite(b"\x00" * 512, start)     # zero a data stripe
        d = diagnose_dataset(mp, "/f.h5", "density")
        assert d.kind is DiagnosisKind.UNKNOWN


class TestRepair:
    @pytest.mark.parametrize("substring,bit", [
        ("Exponent Bias", 3),
        ("Exponent Bias", 0),
        ("Mantissa Normalization", 5),
        ("Mantissa Size", 0),
        ("Mantissa Location", 0),
        ("Address of Raw Data", 5),
        ("Address of Raw Data", 3),
    ])
    def test_single_fault_repair(self, mp, written, substring, bit):
        result, rho = written
        corrupt_field(mp, result, substring, bit)
        report = repair_file(mp, "/f.h5", "density")
        assert report.success, f"{substring} bit {bit}: {report.actions}"
        assert report.mean_after == pytest.approx(1.0, rel=1e-3)
        back = Hdf5Reader(mp, "/f.h5").read("density")
        assert np.array_equal(back.astype(np.float32), rho)

    def test_repair_records_actions(self, mp, written):
        result, _ = written
        corrupt_field(mp, result, "Exponent Bias", 3)
        report = repair_file(mp, "/f.h5", "density")
        assert any(a.field_name == "exponent bias" and a.new_value == 127
                   for a in report.actions)

    def test_clean_file_repair_is_noop(self, mp, written):
        report = repair_file(mp, "/f.h5", "density")
        assert report.success
        assert report.actions == []

    def test_repaired_datatype_restored_exactly(self, mp, written):
        result, _ = written
        corrupt_field(mp, result, "Mantissa Size", 1)
        repair_file(mp, "/f.h5", "density")
        dt = Hdf5Reader(mp, "/f.h5").info("density").datatype
        assert dt.mantissa_size == 23
        assert dt.exponent_location == 23
        assert dt.mantissa_norm is MantissaNorm.IMPLIED


class TestAtRestDecayRepair:
    """Sec. V-A repair applied to at-rest corruption: bytes that decayed
    on the device (no write in flight) are diagnosed and corrected by
    the same redundancy rules as injected write-path faults."""

    def decay_field(self, fs, result, substring, seed=2, n_bytes=1):
        from repro.core.scenario import AtRestDecayHook

        # Decay the field's low-order byte: a flip in the high bytes of
        # the little-endian bias drives the mean to 0/inf, which the
        # decision procedure (correctly) classifies as unrepairable.
        span = next(s for s in result.fieldmap if substring in s.name)
        hook = AtRestDecayHook(fs, seed=seed, n_bytes=n_bytes,
                               region=(span.start, span.start + 1),
                               after_phase=None)
        hook.finalize()
        assert hook.fired
        return hook

    def test_decayed_exponent_bias_is_diagnosed_and_repaired(
            self, fs, mp, written):
        result, rho = written
        self.decay_field(fs, result, "Exponent Bias")
        diagnosis = diagnose_dataset(mp, "/f.h5", "density")
        assert diagnosis.kind is DiagnosisKind.EXPONENT_BIAS
        report = repair_file(mp, "/f.h5", "density")
        assert report.success
        assert report.mean_after == pytest.approx(1.0, rel=1e-3)
        back = Hdf5Reader(mp, "/f.h5").read("density")
        assert np.array_equal(back.astype(np.float32), rho)

    @pytest.mark.parametrize("seed", range(4))
    def test_decayed_bias_repairs_for_any_flipped_bit(
            self, fs, mp, written, seed):
        """The decayed bit position is seed-dependent; every position of
        the one-byte exponent-bias field must repair back to mean 1."""
        result, _ = written
        self.decay_field(fs, result, "Exponent Bias", seed=seed)
        report = repair_file(mp, "/f.h5", "density")
        assert report.success, report.actions
        assert any(a.field_name == "exponent bias" and a.new_value == 127
                   for a in report.actions)
