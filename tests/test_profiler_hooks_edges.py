"""Edge-path coverage for the observation hooks and profile windows.

The profiler side of the scenario engine: counting hooks attached to
non-write primitives, trace summarization, and the empty-profile-window
paths (a phase that performs no writes is a planning error for
instance-targeted scenarios but perfectly fine for at-rest decay, which
needs no dynamic-instance window at all).
"""

from typing import Dict, List, Tuple

import pytest

from repro.apps.base import GoldenRecord, HpcApplication
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.fault_models import BitFlipFault
from repro.core.outcomes import Outcome
from repro.core.profiler import IOProfiler, ProfileResult
from repro.core.signature import FaultSignature
from repro.errors import FFISError
from repro.fusefs.mount import MountPoint, mount
from repro.fusefs.profiler_hooks import CountingHook, TraceHook
from repro.fusefs.vfs import FFISFileSystem


class IdlePhaseApp(HpcApplication):
    """Writes only in stage1; its 'idle' phase executes zero writes."""

    name = "idle-phase"

    def run(self, mp: MountPoint) -> None:
        with self.phase("stage1"):
            mp.write_file("/a.bin", b"payload" * 8, block_size=16)
        with self.phase("idle"):
            mp.read_file("/a.bin")      # reads only: no ffis_write window

    def output_paths(self) -> List[str]:
        return ["/a.bin"]

    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        return {"n": len(mp.read_file("/a.bin"))}

    def classify(self, golden: GoldenRecord, mp: MountPoint) -> Tuple[Outcome, str]:
        if self.outputs_identical(golden, mp):
            return Outcome.BENIGN, "identical"
        return Outcome.SDC, "differs"


class SilentApp(IdlePhaseApp):
    """Performs no writes at all (nothing to profile)."""

    name = "silent"

    def run(self, mp: MountPoint) -> None:
        with self.phase("quiet"):
            mp.makedirs("/d")

    def output_paths(self) -> List[str]:
        return []

    def analyze(self, mp: MountPoint) -> Dict[str, object]:
        return {}


class TestCountingHook:
    def test_counts_non_write_primitives_without_bytes(self):
        fs = FFISFileSystem()
        hook = CountingHook()
        fs.interposer.add_hook("ffis_mknod", hook)
        with mount(fs) as mp:
            mp.mknod("/a")
            mp.mknod("/b")
        assert hook.count == 2
        assert hook.bytes_written == 0

    def test_accumulates_write_bytes(self):
        fs = FFISFileSystem()
        hook = CountingHook()
        fs.interposer.add_hook("ffis_write", hook)
        with mount(fs) as mp:
            mp.write_file("/a.bin", b"x" * 100, block_size=40)
        assert hook.count == 3
        assert hook.bytes_written == 100


class TestTraceHook:
    def test_buffers_summarized_by_default(self):
        fs = FFISFileSystem()
        hook = TraceHook()
        fs.interposer.add_hook("ffis_write", hook)
        with mount(fs) as mp:
            mp.write_file("/a.bin", b"secret-bytes")
        (record,) = hook.records
        assert record.primitive == "ffis_write"
        assert record.summary["buf"] == "<12 bytes>"

    def test_keep_buffers_retains_contents(self):
        fs = FFISFileSystem()
        hook = TraceHook(keep_buffers=True)
        fs.interposer.add_hook("ffis_write", hook)
        with mount(fs) as mp:
            mp.write_file("/a.bin", b"secret-bytes")
        assert hook.records[0].summary["buf"] == b"secret-bytes"


class TestEmptyProfileWindows:
    def signature(self):
        return FaultSignature(model=BitFlipFault())

    def test_profile_records_the_empty_phase_window(self):
        profile = IOProfiler().profile(IdlePhaseApp(), self.signature())
        assert len(profile.window("stage1")) > 0
        assert len(profile.window("idle")) == 0

    def test_unknown_phase_raises(self):
        profile = IOProfiler().profile(IdlePhaseApp(), self.signature())
        with pytest.raises(FFISError, match="no phase named"):
            profile.window("missing")

    def test_profiler_rejects_a_write_free_app(self):
        with pytest.raises(FFISError, match="never executed"):
            IOProfiler().profile(SilentApp(), self.signature())

    def test_instance_scenarios_refuse_an_empty_window(self):
        config = CampaignConfig(fault_model="BF", n_runs=2, seed=1,
                                phase="idle")
        with pytest.raises(FFISError, match="executed no"):
            Campaign(IdlePhaseApp(), config).plan()

    def test_decay_scenario_tolerates_an_empty_window(self):
        """At-rest decay plans no injection points, so a write-free
        phase window is not an error for it."""
        config = CampaignConfig(fault_model="BF", n_runs=2, seed=1,
                                phase="idle", scenario="decay:bytes=2")
        result = Campaign(IdlePhaseApp(), config).run()
        assert len(result.records) == 2
        assert all(r.fault_fired for r in result.records)

    def test_window_none_spans_the_whole_run(self):
        profile = ProfileResult(primitive="ffis_write", total_count=9,
                                bytes_written=0)
        assert profile.window(None) == range(9)
