"""Tests for the Montage pipeline stages."""

import numpy as np
import pytest

from repro.apps.montage.add import (
    COVERAGE_MARGIN,
    mosaic_stats,
    quantize_mosaic,
    run_madd,
    run_mjpeg,
)
from repro.apps.montage.background import (
    PlaneFit,
    fit_plane,
    parse_fits_table,
    render_fits_table,
    solve_corrections,
)
from repro.apps.montage.diff import Placement, overlap_box
from repro.apps.montage.image import SkyConfig, generate_sky, make_raw_tiles
from repro.apps.montage.project import project_tile, run_mproj, shift_bilinear
from repro.errors import FormatError
from repro.mfits.hdu import ImageHDU
from repro.mfits.io import read_fits, write_fits


class TestSkyAndTiles:
    CONFIG = SkyConfig(canvas_shape=(60, 60), tile_shape=(32, 32), n_tiles=6)

    def test_sky_deterministic(self):
        a = generate_sky(self.CONFIG, seed=1)
        b = generate_sky(self.CONFIG, seed=1)
        assert np.array_equal(a, b)

    def test_sky_level_near_paper_min(self):
        sky = generate_sky(self.CONFIG, seed=1)
        assert 82.0 < sky.min() < 84.0

    @pytest.mark.parametrize("seed", [1, 2, 3, 99])
    def test_tiles_cover_cropped_mosaic_for_any_seed(self, seed):
        """The *projected* footprint [y0+1, y0+tile) of the tile set must
        cover the margin-cropped mosaic region for every seed."""
        tiles = make_raw_tiles(self.CONFIG, seed=seed)
        assert len(tiles) == 6
        coverage = np.zeros(self.CONFIG.canvas_shape, dtype=int)
        for t in tiles:
            coverage[t.y0 + 1:t.y0 + 32, t.x0 + 1:t.x0 + 32] += 1
        assert (coverage[COVERAGE_MARGIN:-COVERAGE_MARGIN,
                         COVERAGE_MARGIN:-COVERAGE_MARGIN] >= 1).all()
        assert (coverage >= 2).any()   # overlaps exist for mDiffExec

    def test_tiles_have_distinct_backgrounds(self):
        tiles = make_raw_tiles(self.CONFIG, seed=1)
        assert len({t.background for t in tiles}) == len(tiles)


class TestProjection:
    def test_shift_bilinear_identity(self):
        pixels = np.arange(16.0).reshape(4, 4)
        out, w = shift_bilinear(pixels, 0.0, 0.0)
        assert np.array_equal(out, pixels)
        assert (w == 1).all()

    def test_shift_bilinear_half_pixel(self):
        pixels = np.tile(np.arange(5.0), (5, 1))
        out, _ = shift_bilinear(pixels, 0.0, 0.5)
        assert np.allclose(out, pixels[:, :4] + 0.5)

    def test_project_tile_aligns_to_integer_grid(self):
        """Reprojection undoes the subpixel dither: two tiles of the same
        smooth sky with different dithers agree on the mosaic grid."""
        yy, xx = np.mgrid[0:40, 0:40].astype(float)

        def tile(dy, dx):
            sampled = 0.1 * (yy[:32, :32] + dy) + 0.05 * (xx[:32, :32] + dx)
            return ImageHDU(sampled.astype(np.float32), header={
                "TILE": 0, "CRPIX1": 0.0, "CRPIX2": 0.0,
                "CDELT1": dx, "CDELT2": dy})

        p1, _, oy1, ox1 = project_tile(tile(0.3, 0.7))
        p2, _, oy2, ox2 = project_tile(tile(0.6, 0.2))
        assert (oy1, ox1) == (oy2, ox2) == (1, 1)
        assert np.allclose(p1.data, p2.data, atol=1e-4)

    def test_bad_wcs_is_format_error(self):
        hdu = ImageHDU(np.zeros((8, 8), dtype=np.float32), header={"TILE": 0})
        with pytest.raises(FormatError):
            project_tile(hdu)

    def test_unphysical_dither_rejected(self):
        hdu = ImageHDU(np.zeros((8, 8), dtype=np.float32), header={
            "TILE": 0, "CRPIX1": 0.0, "CRPIX2": 0.0,
            "CDELT1": 3.5, "CDELT2": 0.0})
        with pytest.raises(FormatError):
            project_tile(hdu)

    def test_run_mproj_skips_unreadable(self, mp, rng):
        good = ImageHDU(rng.random((8, 8)).astype(np.float32), header={
            "TILE": 0, "CRPIX1": 0.0, "CRPIX2": 0.0,
            "CDELT1": 0.0, "CDELT2": 0.0})
        write_fits(mp, "/raw0.fits", good)
        mp.write_file("/raw1.fits", b"\x00" * 2880)
        out = run_mproj(mp, ["/raw0.fits", "/raw1.fits"], "/proj")
        assert len(out) == 1

    def test_run_mproj_all_bad_crashes(self, mp):
        mp.write_file("/raw.fits", b"\x00" * 2880)
        with pytest.raises(FormatError):
            run_mproj(mp, ["/raw.fits"], "/proj")


class TestDiffAndBackground:
    def test_overlap_box(self):
        a = Placement(0, 0, (10, 10))
        b = Placement(5, 5, (10, 10))
        assert overlap_box(a, b) == (5, 10, 5, 10)

    def test_fit_plane_recovers_coefficients(self):
        yy, xx = np.mgrid[0:20, 0:20].astype(float)
        data = 2.0 + 0.1 * (yy + 5) + 0.05 * (xx + 7)
        hdu = ImageHDU(data.astype(np.float32), header={
            "TILEA": 0, "TILEB": 1, "CRPIX1": 7.0, "CRPIX2": 5.0})
        fit = fit_plane(hdu)
        assert fit.c0 == pytest.approx(2.0, abs=1e-3)
        assert fit.cy == pytest.approx(0.1, abs=1e-4)
        assert fit.cx == pytest.approx(0.05, abs=1e-4)

    def test_fit_plane_sigma_clips_outliers(self, rng):
        yy, xx = np.mgrid[0:20, 0:20].astype(float)
        data = 1.0 + 0.02 * yy + rng.normal(0, 0.01, (20, 20))
        data[3, 4] = 500.0   # a corrupted pixel
        hdu = ImageHDU(data.astype(np.float32), header={
            "TILEA": 0, "TILEB": 1, "CRPIX1": 0.0, "CRPIX2": 0.0})
        fit = fit_plane(hdu)
        assert fit.c0 == pytest.approx(1.0, abs=0.05)

    def test_solve_corrections_recovers_planes(self):
        # Truth: per-tile offsets; pairwise fits are exact differences.
        truth = {0: 0.5, 1: -0.2, 2: -0.3}
        fits = [PlaneFit(0, 1, truth[0] - truth[1], 0, 0),
                PlaneFit(1, 2, truth[1] - truth[2], 0, 0),
                PlaneFit(0, 2, truth[0] - truth[2], 0, 0)]
        corrections = solve_corrections(fits, [0, 1, 2])
        # Gauge: corrections sum to zero; truth already does.
        for tile, expected in truth.items():
            assert corrections[tile][0] == pytest.approx(expected, abs=1e-9)

    def test_solve_corrections_skips_unknown_tiles(self):
        fits = [PlaneFit(0, 9, 1.0, 0, 0)]
        corrections = solve_corrections(fits, [0, 1])
        assert corrections[0][0] == pytest.approx(0.0, abs=1e-9)

    def test_fits_table_roundtrip_quantizes(self):
        fits = [PlaneFit(0, 1, 0.123456, 0.00123456, -0.00234567)]
        parsed = parse_fits_table(render_fits_table(fits))
        assert parsed[0].c0 == pytest.approx(0.12, abs=1e-9)
        assert parsed[0].cy == pytest.approx(0.001, abs=1e-9)

    def test_fits_table_skips_garbage(self):
        table = render_fits_table([PlaneFit(0, 1, 1, 0, 0)])
        assert len(parse_fits_table(table + "garbage row here\n")) == 1


class TestAdd:
    def test_mosaic_stats(self):
        mosaic = np.array([[1.0, 5.0], [3.0, np.nan]])
        stats = mosaic_stats(mosaic)
        assert stats.min == 1.0 and stats.max == 5.0
        assert stats.covered_pixels == 3

    def test_all_nan_is_format_error(self):
        with pytest.raises(FormatError):
            mosaic_stats(np.full((2, 2), np.nan))

    def test_quantize_is_stable_and_absorbs_small_changes(self, rng):
        mosaic = rng.uniform(83, 200, (16, 16))
        a = quantize_mosaic(mosaic)
        b = quantize_mosaic(mosaic + 1e-4)
        assert a == quantize_mosaic(mosaic.copy())
        assert a == b   # below one grey level

    def test_quantize_sees_large_changes(self, rng):
        mosaic = rng.uniform(83, 200, (16, 16))
        changed = mosaic.copy()
        changed[3, 3] += 5.0
        assert quantize_mosaic(mosaic) != quantize_mosaic(changed)

    def test_run_madd_weighted_average(self, mp, rng):
        shape = (12, 12)
        img = np.full((8, 8), 10.0, dtype=np.float32)
        meta = {"TILE": 0, "CRPIX1": 2.0, "CRPIX2": 2.0}
        write_fits(mp, "/c0.fits", ImageHDU(img, header=dict(meta)))
        write_fits(mp, "/a0.fits", ImageHDU(np.ones((8, 8), np.float32),
                                            header=dict(meta)))
        write_fits(mp, "/c1.fits", ImageHDU(img * 3, header=dict(meta)))
        write_fits(mp, "/a1.fits", ImageHDU(np.ones((8, 8), np.float32) * 3,
                                            header=dict(meta)))
        run_madd(mp, ["/c0.fits", "/c1.fits"], ["/a0.fits", "/a1.fits"],
                 shape, "/out")
        mosaic = read_fits(mp, "/out/m101_mosaic.fits").data
        # (10*1 + 30*3)/4 = 25 in the covered region (margin-cropped).
        assert np.allclose(mosaic[2, 2], 25.0)

    def test_run_madd_no_usable_inputs_crashes(self, mp):
        mp.write_file("/bad.fits", b"\x00" * 2880)
        with pytest.raises(FormatError):
            run_madd(mp, ["/bad.fits"], ["/bad.fits"], (8, 8), "/out")

    def test_run_mjpeg_reads_from_disk(self, mp, rng):
        data = rng.uniform(83, 120, (8, 8)).astype(np.float32)
        write_fits(mp, "/m.fits", ImageHDU(data, header={"CRPIX1": 0.0,
                                                         "CRPIX2": 0.0}))
        run_mjpeg(mp, "/m.fits", "/m.jpg")
        jpg = mp.read_file("/m.jpg")
        assert jpg.startswith(b"P5\n8 8\n255\n")
        assert len(jpg) == len(b"P5\n8 8\n255\n") + 64
