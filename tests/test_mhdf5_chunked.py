"""Tests for chunked/compressed storage in mini-HDF5."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.mhdf5.chunks import (
    CHUNK_BTREE_CAPACITY,
    FILTER_DEFLATE,
    ChunkRecord,
    chunk_btree_size,
    compress_chunk,
    decode_chunk_btree,
    decompress_chunk,
    encode_chunk_btree,
    split_into_chunks,
)
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.layout import ChunkedLayoutMessage, decode_layout
from repro.mhdf5.reader import Hdf5Reader, read_dataset
from repro.mhdf5.repair import DiagnosisKind, diagnose_dataset, repair_file
from repro.mhdf5.writer import DatasetSpec, write_file


@pytest.fixture
def field(rng):
    return rng.lognormal(0, 0.4, (24, 16, 16)).astype(np.float32)


class TestSplitIntoChunks:
    def test_exact_tiling(self, rng):
        array = rng.random((8, 8))
        tiles = split_into_chunks(array, (4, 4))
        assert len(tiles) == 4
        assert {t[0] for t in tiles} == {(0, 0), (0, 4), (4, 0), (4, 4)}

    def test_ragged_edges(self, rng):
        array = rng.random((10, 7))
        tiles = split_into_chunks(array, (4, 4))
        assert len(tiles) == 6
        edge = dict(tiles)[(8, 4)]
        assert edge.shape == (2, 3)

    def test_reassembly(self, rng):
        array = rng.random((9, 11, 5))
        out = np.zeros_like(array)
        for offset, tile in split_into_chunks(array, (4, 4, 4)):
            slices = tuple(slice(o, o + s) for o, s in zip(offset, tile.shape))
            out[slices] = tile
        assert np.array_equal(out, array)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            split_into_chunks(rng.random((4, 4)), (4,))
        with pytest.raises(ValueError):
            split_into_chunks(rng.random((4, 4)), (0, 4))


class TestChunkBtree:
    def records(self):
        return [ChunkRecord((0, 0), 6000, 123, FILTER_DEFLATE),
                ChunkRecord((8, 0), 6200, 456, 0)]

    def test_roundtrip(self):
        w = FieldWriter()
        encode_chunk_btree(w, self.records(), rank=2)
        raw = w.getvalue()
        assert len(raw) == chunk_btree_size(rank=2)
        back = decode_chunk_btree(raw, 0, rank=2)
        assert back == self.records()
        assert back[0].compressed and not back[1].compressed

    def test_capacity_enforced(self):
        too_many = [ChunkRecord((i,), 0, 0) for i in range(CHUNK_BTREE_CAPACITY + 1)]
        with pytest.raises(ValueError):
            encode_chunk_btree(FieldWriter(), too_many, rank=1)

    def test_bad_node_type_crashes(self):
        w = FieldWriter()
        encode_chunk_btree(w, self.records(), rank=2)
        raw = bytearray(w.getvalue())
        raw[4] = 0   # group node type where a chunk node is expected
        with pytest.raises(FormatError):
            decode_chunk_btree(bytes(raw), 0, rank=2)

    def test_corrupt_entry_count_crashes(self):
        w = FieldWriter()
        encode_chunk_btree(w, self.records(), rank=2)
        raw = bytearray(w.getvalue())
        raw[6:8] = (60000).to_bytes(2, "little")
        with pytest.raises(FormatError):
            decode_chunk_btree(bytes(raw), 0, rank=2)


class TestDeflateFilter:
    def test_roundtrip(self, rng):
        raw = rng.integers(0, 4, 4096, dtype=np.uint8).tobytes()
        assert decompress_chunk(compress_chunk(raw), len(raw)) == raw

    def test_corruption_is_detectable(self, rng):
        raw = rng.integers(0, 4, 4096, dtype=np.uint8).tobytes()
        stored = bytearray(compress_chunk(raw))
        stored[len(stored) // 2] ^= 0xFF
        with pytest.raises(FormatError, match="decompression"):
            decompress_chunk(bytes(stored), len(raw))

    def test_size_mismatch_is_detectable(self, rng):
        raw = rng.integers(0, 4, 1024, dtype=np.uint8).tobytes()
        with pytest.raises(FormatError, match="inflated"):
            decompress_chunk(compress_chunk(raw), 9999)


class TestChunkedLayoutMessage:
    def test_roundtrip(self):
        msg = ChunkedLayoutMessage(btree_address=2488, chunk_shape=(8, 16, 16),
                                   element_size=4)
        w = FieldWriter()
        msg.encode(w)
        assert len(w.getvalue()) == msg.encoded_size()
        assert decode_layout(FieldReader(w.getvalue())) == msg

    def test_zero_chunk_dim_crashes(self):
        msg = ChunkedLayoutMessage(0, (8, 0), 4)
        w = FieldWriter()
        msg.encode(w)
        with pytest.raises(FormatError):
            decode_layout(FieldReader(w.getvalue()))


class TestChunkedFiles:
    def test_plain_chunked_roundtrip(self, mp, field):
        write_file(mp, "/c.h5", [DatasetSpec("rho", field, chunks=(8, 16, 16))])
        back = read_dataset(mp, "/c.h5", "rho")
        assert np.array_equal(back.astype(np.float32), field)

    def test_compressed_roundtrip(self, mp, field):
        write_file(mp, "/c.h5", [DatasetSpec("rho", field, chunks=(8, 16, 16),
                                             compression="deflate")])
        back = read_dataset(mp, "/c.h5", "rho")
        assert np.array_equal(back.astype(np.float32), field)

    def test_mixed_layout_file(self, mp, field, rng):
        aux = rng.random((4, 4)).astype(np.float32)
        write_file(mp, "/m.h5", [
            DatasetSpec("rho", field, chunks=(8, 16, 16), compression="deflate"),
            ("aux", aux),
        ])
        reader = Hdf5Reader(mp, "/m.h5")
        assert reader.info("rho").is_chunked
        assert not reader.info("aux").is_chunked
        assert np.array_equal(reader.read("aux").astype(np.float32), aux)

    def test_one_write_per_chunk(self, fs, field):
        from repro.fusefs.mount import mount
        offsets = []
        fs.interposer.add_hook("ffis_write",
                               lambda c: offsets.append(c.args["offset"]))
        with mount(fs) as mp:
            result = write_file(mp, "/c.h5",
                                [DatasetSpec("rho", field, chunks=(8, 16, 16))])
        chunk_addresses = [r.address for r in result.plan.datasets[0].chunk_records]
        assert offsets[:len(chunk_addresses)] == chunk_addresses

    def test_metadata_extent_covers_chunk_btree(self, mp, field):
        result = write_file(mp, "/c.h5",
                            [DatasetSpec("rho", field, chunks=(8, 16, 16))])
        reader = Hdf5Reader(mp, "/c.h5")
        assert reader.metadata_extent() == result.plan.metadata_size

    def test_corrupted_compressed_chunk_crashes(self, mp, field):
        result = write_file(mp, "/c.h5",
                            [DatasetSpec("rho", field, chunks=(8, 16, 16),
                                         compression="deflate")])
        record = result.plan.datasets[0].chunk_records[1]
        offset = record.address + record.stored_size // 2
        raw = bytearray(mp.read_file("/c.h5"))
        raw[offset] ^= 0xFF
        with mp.open("/c.h5", "r+") as f:
            f.pwrite(bytes(raw[offset:offset + 1]), offset)
        with pytest.raises(FormatError):
            Hdf5Reader(mp, "/c.h5").read("rho")

    def test_corrupted_uncompressed_chunk_is_silent(self, mp, field):
        """The contrast: without the filter the same flip is an SDC."""
        result = write_file(mp, "/c.h5",
                            [DatasetSpec("rho", field, chunks=(8, 16, 16))])
        record = result.plan.datasets[0].chunk_records[1]
        offset = record.address + 8
        raw = bytearray(mp.read_file("/c.h5"))
        raw[offset] ^= 0x08
        with mp.open("/c.h5", "r+") as f:
            f.pwrite(bytes(raw[offset:offset + 1]), offset)
        back = Hdf5Reader(mp, "/c.h5").read("rho")
        assert not np.array_equal(back.astype(np.float32), field)

    def test_datatype_faults_still_apply(self, mp, field):
        """Metadata corruption semantics are layout-independent: an
        Exponent Bias fault scales a chunked dataset too."""
        result = write_file(mp, "/c.h5",
                            [DatasetSpec("rho", field, chunks=(8, 16, 16),
                                         compression="deflate")])
        span = next(s for s in result.fieldmap if "Exponent Bias" in s.name)
        raw = bytearray(mp.read_file("/c.h5"))
        raw[span.start] ^= 0x02   # bias 127 -> 125: x4
        with mp.open("/c.h5", "r+") as f:
            f.pwrite(bytes(raw[span.start:span.start + 1]), span.start)
        back = Hdf5Reader(mp, "/c.h5").read("rho")
        assert np.allclose(back, field.astype(np.float64) * 4.0)

    def test_spec_validation(self, field):
        with pytest.raises(ValueError):
            DatasetSpec("x", field, compression="deflate")   # needs chunks
        with pytest.raises(ValueError):
            DatasetSpec("x", field, chunks=(4, 4))           # rank mismatch
        with pytest.raises(ValueError):
            DatasetSpec("x", field, chunks=(8, 16, 16), compression="lzma")

    def test_repair_skips_ard_for_chunked(self, mp, field):
        field = field / field.mean(dtype=np.float64)
        field = field.astype(np.float32)
        field /= np.float32(field.mean(dtype=np.float64))
        write_file(mp, "/c.h5", [DatasetSpec("rho", field, chunks=(8, 16, 16))])
        diagnosis = diagnose_dataset(mp, "/c.h5", "rho")
        assert diagnosis.kind is DiagnosisKind.OK
        report = repair_file(mp, "/c.h5", "rho")
        assert report.success
