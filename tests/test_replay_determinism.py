"""The replay determinism guard: replayed records == cold records.

This is the fast-lane CI gate for the prefix-replay engine: a small
campaign grid over the real applications, every record stream produced
twice -- once with prefix replay (restore + suffix fast-forward), once
cold from an empty file system -- and asserted byte-identical.  A
snapshot-aliasing or splice-soundness bug fails here rather than
silently skewing outcome rates.
"""

from __future__ import annotations

import pytest

from repro.apps.montage import MontageApplication, SkyConfig
from repro.apps.nyx import FieldConfig, NyxApplication
from repro.apps.qmcpack import QmcpackApplication
from repro.apps.qmcpack.dmc import DmcParams
from repro.apps.qmcpack.vmc import VmcParams
from repro.core.campaign import Campaign
from repro.core.config import CampaignConfig
from repro.core.metadata_campaign import MetadataCampaign


def small_nyx() -> NyxApplication:
    return NyxApplication(seed=77, field_config=FieldConfig(
        shape=(16, 16, 16), n_halos=2, halo_amplitude=(800.0, 1500.0),
        halo_radius=(0.6, 0.8)), min_cells=3)


def small_montage() -> MontageApplication:
    return MontageApplication(seed=11, sky_config=SkyConfig(
        canvas_shape=(64, 64), tile_shape=(32, 32), n_tiles=6, n_stars=40))


def small_qmcpack() -> QmcpackApplication:
    return QmcpackApplication(
        seed=21,
        vmc_params=VmcParams(n_walkers=24, n_blocks=12, warmup_blocks=2),
        dmc_params=DmcParams(target_walkers=24, n_blocks=14),
        equilibration=2)


APPS = {"nyx": small_nyx, "montage": small_montage, "qmcpack": small_qmcpack}

CASES = [
    # (app, model, phase, scenario) -- every fault model, stage-targeted
    # Montage windows, multi-point scenarios, and both decay modes.
    ("nyx", "BF", None, None),
    ("qmcpack", "BF", None, None),
    ("qmcpack", "DW", None, None),
    ("qmcpack", "SW", None, "k=2"),
    ("montage", "BF", "mAdd", None),
    ("montage", "SW", "mBgExec", None),
    ("montage", "DW", "mProjExec", None),
    ("montage", "BF", None, "burst=3"),
    ("qmcpack", "BF", None, "decay:bytes=4"),
    ("montage", "BF", None, "decay:bytes=4,after=mDiffExec"),
]


@pytest.mark.parametrize("app_id,model,phase,scenario", CASES)
def test_replayed_records_equal_cold_records(app_id, model, phase, scenario):
    def run(replay):
        config = CampaignConfig(fault_model=model, n_runs=5, seed=13,
                                phase=phase, scenario=scenario,
                                replay=replay)
        return Campaign(APPS[app_id](), config).run().records

    assert run(True) == run(False)


def test_replayed_metadata_sweep_equals_cold(monkeypatch):
    def run(no_replay):
        if no_replay:
            monkeypatch.setenv("REPRO_NO_REPLAY", "1")
        else:
            monkeypatch.delenv("REPRO_NO_REPLAY", raising=False)
        campaign = MetadataCampaign(small_nyx(), seed=3, mode="random-bit")
        return campaign.run(byte_stride=256).records

    assert run(False) == run(True)


def test_replayed_parallel_sweep_equals_cold_serial():
    """Replay composes with the fused sweep and the process pool."""
    from repro.study import ModelSpec, ScenarioSpec, Study, StudySpec, TargetSpec

    def spec(workers):
        return StudySpec(
            name="guard",
            targets=(TargetSpec(app="montage", phase="mAdd", label="MT4"),
                     TargetSpec(app="montage", phase="mBgExec", label="MT3")),
            models=(ModelSpec(model="BF"), ModelSpec(model="DW")),
            scenarios=(ScenarioSpec(),),
            runs=4, seed=2, workers=workers)

    import os

    replayed = Study(spec(workers=2), apps={"montage": small_montage()}).run()
    os.environ["REPRO_NO_REPLAY"] = "1"
    try:
        cold = Study(spec(workers=1), apps={"montage": small_montage()}).run()
    finally:
        del os.environ["REPRO_NO_REPLAY"]
    assert replayed.keys() == cold.keys()
    for key in replayed.keys():
        assert replayed.cell(key) == cold.cell(key)
