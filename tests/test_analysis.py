"""Tests for statistics, tables, and distribution helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.distributions import histogram_distance, mass_histogram
from repro.analysis.stats import (
    campaign_error_bars,
    mean_half_width,
    normal_interval,
    rate_estimate,
    wilson_interval,
)
from repro.analysis.tables import format_percent, render_comparison, render_table
from repro.apps.nyx.halo_finder import Halo, HaloCatalog
from repro.core.outcomes import Outcome, OutcomeTally


class TestIntervals:
    def test_paper_error_bar_claim(self):
        """1,000 runs leave a ~1-2 % error bar at 95 % confidence."""
        for k in (100, 500, 900):
            est = normal_interval(k, 1000)
            assert 0.005 < est.half_width < 0.035

    def test_normal_interval_midpoint(self):
        est = normal_interval(500, 1000)
        assert est.rate == 0.5
        assert est.low == pytest.approx(0.469, abs=1e-3)

    def test_wilson_behaves_at_extremes(self):
        zero = wilson_interval(0, 100)
        assert zero.rate == 0.0
        assert zero.low == 0.0
        assert 0 < zero.high < 0.06
        full = wilson_interval(100, 100)
        assert full.high == 1.0
        assert 0.94 < full.low < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            normal_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            rate_estimate(1, 10, method="psychic")

    @given(st.integers(0, 200), st.integers(1, 200))
    def test_wilson_contains_rate(self, k, n):
        k = min(k, n)
        est = wilson_interval(k, n)
        assert est.low <= est.rate <= est.high
        assert 0.0 <= est.low and est.high <= 1.0

    def test_campaign_error_bars(self):
        tally = OutcomeTally()
        for _ in range(90):
            tally.add(Outcome.BENIGN)
        for _ in range(10):
            tally.add(Outcome.SDC)
        bars = campaign_error_bars(tally)
        assert bars[Outcome.BENIGN].rate == 0.9
        assert mean_half_width(bars) > 0


class TestTables:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(ln) for ln in lines if ln}) == 1   # uniform width

    def test_row_length_validated(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_format_percent(self):
        assert format_percent(0.857) == "85.7%"

    def test_render_comparison(self):
        text = render_comparison(["sdc"], ["0.2%"], ["0.3%"], title="T")
        assert "paper" in text and "measured" in text and text.startswith("T")


class TestDistributions:
    def catalog(self, masses):
        return HaloCatalog(halos=[Halo(np.zeros(3), 10, m) for m in masses],
                           average_value=1.0)

    def test_mass_histogram(self):
        hist = mass_histogram(self.catalog([10.0, 20.0, 1000.0]), n_bins=4,
                              mass_range=(5, 2000))
        assert hist.n_halos == 3
        centres, counts = hist.series()
        assert len(centres) == 4
        assert counts.sum() == 3

    def test_shared_bins_compare(self):
        a = mass_histogram(self.catalog([10.0, 500.0]), 4, (5, 2000))
        b = mass_histogram(self.catalog([10.0, 20.0]), 4, (5, 2000))
        assert histogram_distance(a, b) == 2

    def test_distance_requires_shared_bins(self):
        a = mass_histogram(self.catalog([10.0]), 4, (5, 2000))
        b = mass_histogram(self.catalog([10.0]), 5, (5, 2000))
        with pytest.raises(ValueError):
            histogram_distance(a, b)

    def test_empty_catalog_needs_range(self):
        with pytest.raises(ValueError):
            mass_histogram(self.catalog([]))
        hist = mass_histogram(self.catalog([]), 4, (5, 2000))
        assert hist.n_halos == 0

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            mass_histogram(self.catalog([10.0]), 4, (-1, 10))
