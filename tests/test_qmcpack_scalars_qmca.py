"""Tests for the scalar.dat format and the qmca reanalysis."""

import numpy as np
import pytest

from repro.apps.qmcpack.qmca import (
    AnalysisError,
    analyze_file,
    analyze_rows,
    blocking_error,
)
from repro.apps.qmcpack.scalars import (
    ScalarRow,
    parse_scalars,
    render_scalars,
    rows_from_blocks,
    write_scalars,
)


def make_rows(n=40, energy=-2.903):
    return [ScalarRow(i, energy + 0.001 * np.sin(i), 0.08, 256.0)
            for i in range(n)]


class TestScalarsFormat:
    def test_roundtrip(self):
        rows = make_rows(10)
        parsed = parse_scalars(render_scalars(rows))
        assert len(parsed) == 10
        for a, b in zip(rows, parsed):
            assert a.index == b.index
            assert a.local_energy == pytest.approx(b.local_energy, abs=1e-8)

    def test_header_is_comment(self):
        text = render_scalars(make_rows(2))
        assert text.splitlines()[0].startswith("#")

    def test_malformed_rows_skipped(self):
        text = render_scalars(make_rows(5))
        corrupted = text.replace("\n    2", "\nGARBAGE LINE\n    2", 1)
        parsed = parse_scalars(corrupted)
        assert len(parsed) == 5

    def test_nul_bytes_skipped(self):
        """Dropped-write holes read as NUL runs; the parser must survive."""
        text = render_scalars(make_rows(10))
        hole = text[:120] + "\x00" * 60 + text[180:]
        parsed = parse_scalars(hole)
        assert 0 < len(parsed) <= 10

    def test_partial_number_skipped(self):
        parsed = parse_scalars("  1  -2.9  0.1\n")  # 3 columns, not 4
        assert parsed == []

    def test_write_through_mount(self, mp):
        write_scalars(mp, "/s.dat", make_rows(50), block_size=512)
        parsed = parse_scalars(mp.read_file("/s.dat").decode())
        assert len(parsed) == 50

    def test_rows_from_blocks(self):
        rows = rows_from_blocks(np.array([-2.9, -2.8]), np.array([0.1, 0.2]),
                                np.array([10.0, 11.0]))
        assert rows[1].index == 1
        assert rows[1].weight == 11.0


class TestQmca:
    def test_mean_with_equilibration_cut(self):
        rows = [ScalarRow(i, -2.0 if i < 20 else -2.9, 0.1, 100.0)
                for i in range(60)]
        estimate = analyze_rows(rows, equilibration=20)
        assert estimate.mean == pytest.approx(-2.9)
        assert estimate.n_blocks == 40

    def test_weighted_average(self):
        rows = [ScalarRow(20, -3.0, 0.1, 300.0), ScalarRow(21, -2.0, 0.1, 100.0)]
        estimate = analyze_rows(rows, equilibration=0, min_rows=2)
        assert estimate.mean == pytest.approx(-2.75)

    def test_too_few_rows_is_analysis_error(self):
        with pytest.raises(AnalysisError):
            analyze_rows(make_rows(5), equilibration=0, min_rows=10)

    def test_nonfinite_energy_is_analysis_error(self):
        rows = make_rows(30)
        rows[25] = ScalarRow(25, float("nan"), 0.1, 100.0)
        with pytest.raises(AnalysisError):
            analyze_rows(rows, equilibration=0)

    def test_missing_file_is_analysis_error(self, mp):
        with pytest.raises(AnalysisError):
            analyze_file(mp, "/missing.dat")

    def test_analyze_file_end_to_end(self, mp):
        write_scalars(mp, "/s.dat", make_rows(60))
        estimate = analyze_file(mp, "/s.dat", equilibration=10)
        assert estimate.mean == pytest.approx(-2.903, abs=1e-2)
        assert estimate.error > 0

    def test_blocking_error_positive(self, rng):
        values = rng.normal(-2.9, 0.01, 64)
        assert blocking_error(values) > 0

    def test_blocking_error_short_series(self):
        assert blocking_error(np.array([-2.9, -2.91])) >= 0
