"""Tests for the virtual file system primitives and mount lifecycle."""

import pytest

from repro.errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotMounted,
    VFSError,
)
from repro.fusefs.inode import InodeKind, InodeTable
from repro.fusefs.mount import mount


class TestInodeTable:
    def test_root_exists(self):
        table = InodeTable()
        assert table.get(1).is_dir

    def test_create_and_lookup(self):
        table = InodeTable()
        table.create("/a", InodeKind.DIRECTORY)
        node = table.create("/a/f", InodeKind.FILE)
        assert table.lookup("/a/f").ino == node.ino

    def test_lookup_missing(self):
        table = InodeTable()
        with pytest.raises(FileNotFound):
            table.lookup("/nope")

    def test_relative_path_rejected(self):
        table = InodeTable()
        with pytest.raises(ValueError):
            table.lookup("relative")

    def test_dot_components_rejected(self):
        table = InodeTable()
        with pytest.raises(ValueError):
            table.lookup("/a/../b")

    def test_duplicate_rejected(self):
        table = InodeTable()
        table.create("/f", InodeKind.FILE)
        with pytest.raises(FileExists):
            table.create("/f", InodeKind.FILE)

    def test_unlink_directory_rejected(self):
        table = InodeTable()
        table.create("/d", InodeKind.DIRECTORY)
        parent, name = table.lookup_parent("/d")
        with pytest.raises(IsADirectory):
            table.unlink(parent, name)


class TestMountLifecycle:
    def test_unmounted_ops_rejected(self, fs):
        with pytest.raises(NotMounted):
            fs.ffis_open("/f", "w")

    def test_mount_context(self, fs):
        with mount(fs) as mp:
            assert fs.mounted
            mp.write_file("/f", b"x")
        assert not fs.mounted

    def test_unmount_on_exception(self, fs):
        with pytest.raises(RuntimeError):
            with mount(fs):
                raise RuntimeError("boom")
        assert not fs.mounted

    def test_double_mount_rejected(self, fs):
        with mount(fs):
            with pytest.raises(NotMounted):
                fs._set_mounted(True)

    def test_data_survives_remount(self, fs):
        with mount(fs) as mp:
            mp.write_file("/f", b"persist")
        with mount(fs) as mp:
            assert mp.read_file("/f") == b"persist"

    def test_counters_reset_on_remount(self, fs):
        with mount(fs) as mp:
            mp.write_file("/f", b"x")
            assert fs.interposer.count("ffis_write") == 1
        with mount(fs):
            assert fs.interposer.count("ffis_write") == 0

    def test_format_requires_unmounted(self, fs):
        with mount(fs):
            with pytest.raises(NotMounted):
                fs.format()
        fs.format()


class TestFileIO:
    def test_write_read_roundtrip(self, mp):
        mp.write_file("/f", b"hello world")
        assert mp.read_file("/f") == b"hello world"

    def test_block_split_writes(self, mp, fs):
        mp.write_file("/f", b"x" * 10, block_size=3)
        assert fs.interposer.count("ffis_write") == 4
        assert mp.read_file("/f") == b"x" * 10

    def test_pwrite_offsets(self, mp):
        with mp.open("/f", "w") as f:
            f.pwrite(b"tail", 6)
            f.pwrite(b"head", 0)
        assert mp.read_file("/f") == b"head\x00\x00tail"

    def test_open_w_truncates(self, mp):
        mp.write_file("/f", b"long content")
        mp.write_file("/f", b"s")
        assert mp.read_file("/f") == b"s"

    def test_open_r_missing(self, mp):
        with pytest.raises(FileNotFound):
            mp.open("/missing", "r")

    def test_append(self, mp):
        mp.write_file("/f", b"ab")
        with mp.open("/f", "a") as f:
            f.write(b"cd")
        assert mp.read_file("/f") == b"abcd"

    def test_read_plus_mode(self, mp):
        mp.write_file("/f", b"abcdef")
        with mp.open("/f", "r+") as f:
            f.pwrite(b"XY", 2)
        assert mp.read_file("/f") == b"abXYef"

    def test_write_to_readonly_fd_rejected(self, mp):
        mp.write_file("/f", b"x")
        with mp.open("/f", "r") as f:
            with pytest.raises(VFSError):
                f.write(b"y")

    def test_seek_tell(self, mp):
        mp.write_file("/f", b"abcdef")
        with mp.open("/f", "r") as f:
            f.seek(2)
            assert f.read(2) == b"cd"
            f.seek(-1, 2)
            assert f.read() == b"f"
            f.seek(0, 1)
            assert f.tell() == 6

    def test_closed_fd_rejected(self, mp, fs):
        f = mp.open("/f", "w")
        f.close()
        with pytest.raises(BadFileDescriptor):
            fs.ffis_write(f.fd, b"x", 1, 0)

    def test_claimed_size_makes_holes_readable(self, mp, fs):
        """A short backend write with a larger claimed size reads as a hole
        (the on-device manifestation of a shorn write)."""
        with mp.open("/f", "w") as f:
            fs.ffis_write(f.fd, b"ab", 8, 0)  # 2-byte buffer, 8 claimed
        data = mp.read_file("/f")
        assert data == b"ab" + b"\x00" * 6


class TestNamespace:
    def test_mkdir_and_readdir(self, mp):
        mp.mkdir("/d")
        mp.write_file("/d/a", b"1")
        mp.write_file("/d/b", b"2")
        assert mp.listdir("/d") == ["a", "b"]

    def test_makedirs(self, mp):
        mp.makedirs("/x/y/z")
        assert mp.stat("/x/y/z").kind is InodeKind.DIRECTORY

    def test_unlink(self, mp):
        mp.write_file("/f", b"x")
        mp.remove("/f")
        assert not mp.exists("/f")

    def test_rename(self, mp):
        mp.write_file("/a", b"data")
        mp.rename("/a", "/b")
        assert not mp.exists("/a")
        assert mp.read_file("/b") == b"data"

    def test_rename_to_existing_rejected(self, mp):
        mp.write_file("/a", b"1")
        mp.write_file("/b", b"2")
        with pytest.raises(FileExists):
            mp.rename("/a", "/b")

    def test_truncate_path(self, mp):
        mp.write_file("/f", b"abcdef")
        mp.truncate("/f", 3)
        assert mp.read_file("/f") == b"abc"

    def test_mknod_and_chmod(self, mp):
        mp.mknod("/node", mode=0o600)
        assert mp.stat("/node").mode == 0o600
        mp.chmod("/node", 0o755)
        assert mp.stat("/node").mode == 0o755

    def test_stat_size_tracks_writes(self, mp):
        mp.write_file("/f", b"12345")
        assert mp.stat("/f").size == 5

    def test_open_directory_rejected(self, mp):
        mp.mkdir("/d")
        with pytest.raises(IsADirectory):
            mp.open("/d", "r")
