"""Tests for datatype/dataspace/layout/superblock/btree/heap structures."""

import pytest

from repro.errors import FormatError
from repro.mhdf5 import constants as C
from repro.mhdf5.btree import (
    BtreeEntry,
    SymbolEntry,
    btree_node_size,
    decode_btree_node,
    decode_snod,
    encode_btree_node,
    encode_snod,
    snod_size,
)
from repro.mhdf5.codec import FieldReader, FieldWriter
from repro.mhdf5.dataspace import DataspaceMessage
from repro.mhdf5.datatype import DatatypeMessage, MantissaNorm, ieee_f32le, ieee_f64le
from repro.mhdf5.heap import LocalHeap, decode_heap
from repro.mhdf5.layout import ContiguousLayoutMessage
from repro.mhdf5.superblock import Superblock


def roundtrip(obj, decode, container="t"):
    w = FieldWriter(container=container)
    obj.encode(w)
    return decode(FieldReader(w.getvalue())), w.getvalue()


class TestDatatypeMessage:
    def test_roundtrip_f32(self):
        decoded, raw = roundtrip(ieee_f32le(), DatatypeMessage.decode)
        assert decoded == ieee_f32le()
        assert len(raw) == DatatypeMessage.ENCODED_SIZE

    def test_roundtrip_f64(self):
        decoded, _ = roundtrip(ieee_f64le(), DatatypeMessage.decode)
        assert decoded == ieee_f64le()

    def test_norm_bit5_is_in_bitfield_byte(self):
        """Flipping bit 5 of byte 1 turns IMPLIED into NONE (the paper's
        'Bit-5 of Mantissa Normalization')."""
        w = FieldWriter()
        ieee_f32le().encode(w)
        raw = bytearray(w.getvalue())
        raw[1] ^= 1 << 5
        decoded = DatatypeMessage.decode(FieldReader(bytes(raw)))
        assert decoded.mantissa_norm is MantissaNorm.NONE

    def test_unknown_norm_degrades_to_none(self):
        dt = ieee_f32le().with_fields(mantissa_norm_raw=3)
        assert dt.mantissa_norm is MantissaNorm.ALWAYS_SET or dt.mantissa_norm_raw == 3
        # raw value 3 is a valid enum (ALWAYS_SET|?) -- out-of-enum values
        # can only arise masked to 2 bits, so all are defined.

    def test_bad_class_rejected(self):
        w = FieldWriter()
        ieee_f32le().encode(w)
        raw = bytearray(w.getvalue())
        raw[0] = (C.DATATYPE_VERSION << 4) | C.DTCLASS_FIXED
        with pytest.raises(FormatError):
            DatatypeMessage.decode(FieldReader(bytes(raw)))

    def test_bad_version_rejected(self):
        w = FieldWriter()
        ieee_f32le().encode(w)
        raw = bytearray(w.getvalue())
        raw[0] = (9 << 4) | C.DTCLASS_FLOAT
        with pytest.raises(FormatError):
            DatatypeMessage.decode(FieldReader(bytes(raw)))

    def test_oversize_element_rejected(self):
        w = FieldWriter()
        DatatypeMessage(size=4).encode(w)
        raw = bytearray(w.getvalue())
        raw[4] = 16  # size field
        with pytest.raises(FormatError):
            DatatypeMessage.decode(FieldReader(bytes(raw)))


class TestDataspace:
    def test_roundtrip(self):
        ds = DataspaceMessage(dims=(4, 5, 6))
        decoded, raw = roundtrip(ds, DataspaceMessage.decode)
        assert decoded == ds
        assert len(raw) == ds.encoded_size()
        assert decoded.npoints == 120

    def test_zero_dimension_rejected(self):
        w = FieldWriter()
        DataspaceMessage(dims=(4,)).encode(w)
        raw = bytearray(w.getvalue())
        raw[8:16] = (0).to_bytes(8, "little")
        with pytest.raises(FormatError):
            DataspaceMessage.decode(FieldReader(bytes(raw)))

    def test_huge_dimension_rejected(self):
        w = FieldWriter()
        DataspaceMessage(dims=(4,)).encode(w)
        raw = bytearray(w.getvalue())
        raw[8:16] = (1 << 50).to_bytes(8, "little")
        with pytest.raises(FormatError):
            DataspaceMessage.decode(FieldReader(bytes(raw)))


class TestLayout:
    def test_roundtrip(self):
        ly = ContiguousLayoutMessage(data_address=2488, size=4096)
        decoded, raw = roundtrip(ly, ContiguousLayoutMessage.decode)
        assert decoded == ly
        assert len(raw) == ContiguousLayoutMessage.ENCODED_SIZE

    def test_wrong_class_rejected(self):
        w = FieldWriter()
        ContiguousLayoutMessage(data_address=0, size=0).encode(w)
        raw = bytearray(w.getvalue())
        raw[1] = 2  # chunked
        with pytest.raises(FormatError):
            ContiguousLayoutMessage.decode(FieldReader(bytes(raw)))


class TestSuperblock:
    def test_roundtrip(self):
        sb = Superblock(end_of_file_address=1000, root_header_address=48,
                        consistency_flags=1)
        decoded, _ = roundtrip(sb, Superblock.decode)
        assert decoded == sb

    def test_signature_validated(self):
        w = FieldWriter()
        Superblock(1000, 48).encode(w)
        raw = bytearray(w.getvalue())
        raw[0] ^= 0xFF
        with pytest.raises(FormatError):
            Superblock.decode(FieldReader(bytes(raw)))

    def test_nonzero_base_address_rejected(self):
        w = FieldWriter()
        Superblock(1000, 48).encode(w)
        raw = bytearray(w.getvalue())
        raw[16] = 1
        with pytest.raises(FormatError):
            Superblock.decode(FieldReader(bytes(raw)))


class TestBtreeAndSnod:
    def test_btree_roundtrip(self):
        entries = [BtreeEntry(key_heap_offset=8, child_address=2048)]
        w = FieldWriter()
        encode_btree_node(w, entries)
        raw = w.getvalue()
        assert len(raw) == btree_node_size()
        node = decode_btree_node(raw, 0)
        assert node.entries == tuple(entries)

    def test_btree_capacity_enforced(self):
        entries = [BtreeEntry(0, 0)] * (2 * C.BTREE_K + 1)
        with pytest.raises(ValueError):
            encode_btree_node(FieldWriter(), entries)

    def test_btree_bad_signature(self):
        w = FieldWriter()
        encode_btree_node(w, [BtreeEntry(0, 64)])
        raw = bytearray(w.getvalue())
        raw[0] ^= 1
        with pytest.raises(FormatError):
            decode_btree_node(bytes(raw), 0)

    def test_btree_implausible_entry_count(self):
        w = FieldWriter()
        encode_btree_node(w, [BtreeEntry(0, 64)])
        raw = bytearray(w.getvalue())
        raw[6:8] = (5000).to_bytes(2, "little")
        with pytest.raises(FormatError):
            decode_btree_node(bytes(raw), 0)

    def test_snod_roundtrip(self):
        entries = [SymbolEntry(name_heap_offset=0, header_address=2296),
                   SymbolEntry(name_heap_offset=16, header_address=2520)]
        w = FieldWriter()
        encode_snod(w, entries)
        raw = w.getvalue()
        assert len(raw) == snod_size()
        node = decode_snod(raw, 0)
        assert node.entries == tuple(entries)

    def test_snod_bad_version(self):
        w = FieldWriter()
        encode_snod(w, [SymbolEntry(0, 0)])
        raw = bytearray(w.getvalue())
        raw[4] = 9
        with pytest.raises(FormatError):
            decode_snod(bytes(raw), 0)

    def test_btree_is_dominant_metadata_structure(self):
        """The sizing that gives the paper's ~72 % B-tree share."""
        assert btree_node_size() == 1760
        assert snod_size() == 328


class TestLocalHeap:
    def test_names_roundtrip(self):
        heap = LocalHeap()
        off_a = heap.add_name("baryon_density")
        off_b = heap.add_name("velocity_x")
        assert off_a != off_b
        w = FieldWriter()
        heap.encode(w, data_segment_address=32)
        info = decode_heap(w.getvalue(), 0)
        assert info.name_at(off_a) == "baryon_density"
        assert info.name_at(off_b) == "velocity_x"

    def test_duplicate_name_interned(self):
        heap = LocalHeap()
        assert heap.add_name("x") == heap.add_name("x")

    def test_capacity_enforced(self):
        heap = LocalHeap(data_size=16)
        heap.add_name("0123456789")
        with pytest.raises(ValueError):
            heap.add_name("toolongforthisheap")

    def test_bad_offset_is_format_error(self):
        heap = LocalHeap()
        heap.add_name("x")
        w = FieldWriter()
        heap.encode(w, data_segment_address=32)
        info = decode_heap(w.getvalue(), 0)
        with pytest.raises(FormatError):
            info.name_at(10_000)

    def test_nul_in_name_rejected(self):
        with pytest.raises(ValueError):
            LocalHeap().add_name("a\x00b")
