"""Tests for the HDF5-metadata byte-by-byte campaign (Sec. IV-D)."""

import pytest

from repro.core.metadata_campaign import MetadataCampaign
from repro.core.outcomes import Outcome
from repro.errors import FFISError
from repro.experiments.table3 import fieldmap_for


@pytest.fixture(scope="module")
def located(tiny_nyx_module):
    campaign = MetadataCampaign(tiny_nyx_module)
    info, golden = campaign.locate_metadata_write()
    return campaign, info, golden


@pytest.fixture(scope="module")
def tiny_nyx_module():
    # Module-local copy to avoid cross-file fixture scope friction.
    from repro.apps.nyx import FieldConfig, NyxApplication
    config = FieldConfig(shape=(16, 16, 16), n_halos=2,
                         halo_amplitude=(800.0, 1500.0),
                         halo_radius=(0.6, 0.8))
    return NyxApplication(seed=77, field_config=config, min_cells=3)


class TestLocateMetadataWrite:
    def test_penultimate_write_is_the_blob(self, tiny_nyx_module, located):
        _, info, _ = located
        assert info.file_offset == 0
        assert info.size == tiny_nyx_module.last_write_result.plan.metadata_size
        # 4 data writes + metadata + flags at 16^3.
        assert info.write_index == 4

    def test_requires_two_writes(self):
        from repro.apps.base import HpcApplication

        class OneWrite(HpcApplication):
            name = "one"

            def run(self, mp):
                mp.write_file("/f", b"x")

            def output_paths(self):
                return ["/f"]

            def analyze(self, mp):
                return {}

            def classify(self, golden, mp):
                return Outcome.BENIGN, ""

        with pytest.raises(FFISError):
            MetadataCampaign(OneWrite()).locate_metadata_write()


class TestRunCase:
    def test_signature_byte_crashes(self, tiny_nyx_module, located):
        campaign, info, golden = located
        record = campaign.run_case(info, golden, byte_offset=0, bit=0,
                                   run_index=0)
        assert record.outcome is Outcome.CRASH

    def test_reserved_byte_benign(self, tiny_nyx_module, located):
        campaign, info, golden = located
        fieldmap = tiny_nyx_module.last_write_result.fieldmap
        span = next(s for s in fieldmap if "B-tree unused capacity" in s.name)
        record = campaign.run_case(info, golden, byte_offset=span.start,
                                   bit=4, run_index=0)
        assert record.outcome is Outcome.BENIGN

    def test_exponent_bias_byte_is_sdc(self, tiny_nyx_module, located):
        campaign, info, golden = located
        fieldmap = tiny_nyx_module.last_write_result.fieldmap
        span = next(s for s in fieldmap if "Exponent Bias" in s.name)
        record = campaign.run_case(info, golden, byte_offset=span.start,
                                   bit=0, run_index=0)
        assert record.outcome is Outcome.SDC

    def test_field_annotation(self, tiny_nyx_module, located):
        campaign, info, golden = located
        campaign.fieldmap = tiny_nyx_module.last_write_result.fieldmap
        record = campaign.run_case(info, golden, byte_offset=0, bit=0,
                                   run_index=0)
        assert record.field_name == "superblock.Superblock Signature"


class TestSweep:
    def test_strided_sweep_shape(self, tiny_nyx_module):
        fieldmap = fieldmap_for(tiny_nyx_module)
        campaign = MetadataCampaign(tiny_nyx_module, fieldmap=fieldmap, seed=3)
        result = campaign.run(byte_stride=64)
        expected_cases = (result.metadata.size + 63) // 64
        assert result.tally.total == expected_cases
        # Benign dominates (the paper's headline proportion).
        assert result.tally.rate(Outcome.BENIGN) > 0.6
        for record in result.records:
            assert record.field_name is not None

    def test_all_bits_mode(self, tiny_nyx_module):
        campaign = MetadataCampaign(tiny_nyx_module, mode="all-bits")
        result = campaign.run(byte_stride=512)
        assert result.tally.total == ((result.metadata.size + 511) // 512) * 8

    def test_bad_mode_rejected(self, tiny_nyx_module):
        with pytest.raises(FFISError):
            MetadataCampaign(tiny_nyx_module, mode="every-other-tuesday")

    def test_sweep_is_replayable(self, tiny_nyx_module):
        a = MetadataCampaign(tiny_nyx_module, seed=5).run(byte_stride=128)
        b = MetadataCampaign(tiny_nyx_module, seed=5).run(byte_stride=128)
        assert [r.outcome for r in a.records] == [r.outcome for r in b.records]
        assert [r.bit_index for r in a.records] == [r.bit_index for r in b.records]

    def test_fields_by_outcome(self, tiny_nyx_module):
        fieldmap = fieldmap_for(tiny_nyx_module)
        campaign = MetadataCampaign(tiny_nyx_module, fieldmap=fieldmap, seed=3)
        result = campaign.run(byte_stride=32)
        buckets = result.fields_by_outcome()
        assert any("unused" in name or "reserved" in name.lower()
                   for name in buckets[Outcome.BENIGN])
