"""Cross-cutting property tests on the core scientific invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.nyx.halo_finder import find_halos
from repro.fusefs.mount import mount
from repro.fusefs.vfs import FFISFileSystem
from repro.mhdf5.reader import Hdf5Reader
from repro.mhdf5.writer import DatasetSpec, write_file


@st.composite
def density_fields(draw):
    """Small random positive fields with a few injected peaks."""
    seed = draw(st.integers(0, 2**31 - 1))
    nz = draw(st.integers(6, 12))
    rng = np.random.default_rng(seed)
    rho = rng.lognormal(0, 0.4, (nz, 8, 8))
    for _ in range(draw(st.integers(0, 3))):
        z, y, x = (rng.integers(0, s) for s in rho.shape)
        rho[z, y, x] += rng.uniform(100, 1000)
    return rho


class TestHaloFinderInvariants:
    @given(density_fields(), st.floats(0.25, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_scale_invariance_of_structure(self, rho, factor):
        """The threshold is relative to the average, so scaling the whole
        field preserves the candidate set, halo count, and cell counts
        (masses scale by the factor)."""
        base = find_halos(rho, min_cells=2)
        scaled = find_halos(rho * factor, min_cells=2)
        assert scaled.n_candidates == base.n_candidates
        assert len(scaled) == len(base)
        for a, b in zip(base.halos, scaled.halos):
            assert b.n_cells == a.n_cells
            assert b.mass == pytest.approx(a.mass * factor, rel=1e-9)

    @given(density_fields())
    @settings(max_examples=40, deadline=None)
    def test_halo_accounting(self, rho):
        """Halos partition a subset of the candidates; each halo's cell
        count is at least min_cells and masses are positive."""
        catalog = find_halos(rho, min_cells=2)
        assert sum(h.n_cells for h in catalog.halos) <= catalog.n_candidates
        for halo in catalog.halos:
            assert halo.n_cells >= 2
            assert halo.mass > 0
            for axis, extent in enumerate(rho.shape):
                assert -0.5 <= halo.position[axis] <= extent - 0.5

    @given(density_fields())
    @settings(max_examples=25, deadline=None)
    def test_rendering_roundtrip_is_stable(self, rho):
        """to_text is a pure function of the catalog (bit-compare safe)."""
        assert find_halos(rho).to_text() == find_halos(rho).to_text()


class TestWriterInvariants:
    shapes = st.sampled_from([(6, 5), (4, 4, 4), (12,), (3, 7, 2)])

    @given(st.integers(0, 2**31 - 1), shapes, st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_any_shape_roundtrips(self, seed, shape, chunked):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 10, shape).astype(np.float32)
        fs = FFISFileSystem()
        with mount(fs) as mp:
            if chunked:
                chunks = tuple(max(1, s // 2) for s in shape)
                spec = DatasetSpec("d", data, chunks=chunks,
                                   compression="deflate")
            else:
                spec = ("d", data)
            result = write_file(mp, "/f.h5", [spec])
            reader = Hdf5Reader(mp, "/f.h5")
            back = reader.read("d")
            assert np.array_equal(back.astype(np.float32), data)
            # Field-map completeness holds for every layout.
            fm = result.fieldmap
            assert fm.extent == result.plan.metadata_size
            assert all(fm.field_at(i) is not None
                       for i in range(0, result.plan.metadata_size, 7))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_metadata_blob_never_overlaps_data(self, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.random((4, 4)).astype(np.float32) for _ in range(3)]
        fs = FFISFileSystem()
        with mount(fs) as mp:
            result = write_file(mp, "/f.h5",
                                [(f"d{i}", a) for i, a in enumerate(arrays)])
        for dp in result.plan.datasets:
            assert dp.data_address >= result.plan.metadata_size
        # Dataset extents are disjoint.
        spans = sorted((dp.data_address, dp.data_address + dp.data_size)
                       for dp in result.plan.datasets)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
