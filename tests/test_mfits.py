"""Tests for the mini-FITS format."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FormatError
from repro.mfits import BLOCK_SIZE, Card, ImageHDU, format_card, parse_card, read_fits, write_fits


class TestCards:
    def test_value_types_roundtrip(self):
        for value in (True, False, 42, -17, 3.25, "m101", None):
            card = Card("KEY", value)
            assert parse_card(format_card(card)).value == value

    def test_comment_preserved(self):
        card = Card("BITPIX", -32, "IEEE float")
        parsed = parse_card(format_card(card))
        assert parsed.comment == "IEEE float"
        assert parsed.value == -32

    def test_end_card(self):
        assert parse_card(format_card(Card("END"))).keyword == "END"

    def test_string_with_quote_and_slash(self):
        card = Card("NAME", "o'brien/field")
        assert parse_card(format_card(card)).value == "o'brien/field"

    def test_card_is_80_bytes(self):
        assert len(format_card(Card("SIMPLE", True))) == 80

    def test_long_keyword_rejected(self):
        with pytest.raises(ValueError):
            Card("WAYTOOLONGKEY", 1)

    def test_malformed_card_raises(self):
        with pytest.raises(FormatError):
            parse_card(b"\x00" * 80)
        with pytest.raises(FormatError):
            parse_card(b"KEY     X 1".ljust(80))
        with pytest.raises(FormatError):
            parse_card(b"x" * 79)

    def test_unparseable_value_raises(self):
        raw = ("KEY     = @@@@").ljust(80).encode()
        with pytest.raises(FormatError):
            parse_card(raw)

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                   max_size=16))
    def test_string_roundtrip_property(self, text):
        card = Card("STR", text.rstrip())
        assert parse_card(format_card(card)).value == text.rstrip()


class TestImageIO:
    def test_roundtrip(self, mp, rng):
        data = rng.normal(100, 5, (13, 17)).astype(np.float32)
        hdu = ImageHDU(data, header={"CRPIX1": 3.0, "CRPIX2": 4.0})
        write_fits(mp, "/img.fits", hdu)
        back = read_fits(mp, "/img.fits")
        assert np.array_equal(back.data, data)
        assert back.header["CRPIX1"] == 3.0

    def test_block_multiple_size(self, mp, rng):
        data = rng.random((9, 9)).astype(np.float32)
        write_fits(mp, "/img.fits", ImageHDU(data))
        assert mp.stat("/img.fits").size % BLOCK_SIZE == 0

    def test_big_endian_on_disk(self, mp):
        data = np.array([[1.5]], dtype=np.float32)
        write_fits(mp, "/img.fits", ImageHDU(data))
        raw = mp.read_file("/img.fits")
        assert raw[BLOCK_SIZE : BLOCK_SIZE + 4] == data.astype(">f4").tobytes()

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            ImageHDU(np.zeros(4, dtype=np.float32))

    def test_truncated_data_raises(self, mp, rng):
        data = rng.random((40, 40)).astype(np.float32)
        write_fits(mp, "/img.fits", ImageHDU(data))
        mp.truncate("/img.fits", BLOCK_SIZE + 100)
        with pytest.raises(FormatError, match="truncated"):
            read_fits(mp, "/img.fits")

    def test_zeroed_header_raises(self, mp, rng):
        data = rng.random((8, 8)).astype(np.float32)
        write_fits(mp, "/img.fits", ImageHDU(data))
        with mp.open("/img.fits", "r+") as f:
            f.pwrite(b"\x00" * 80, 0)
        with pytest.raises(FormatError):
            read_fits(mp, "/img.fits")

    def test_missing_end_card_raises(self, mp, rng):
        # A file of spaces parses cards forever -> header has no END.
        mp.write_file("/bad.fits", b" " * BLOCK_SIZE)
        with pytest.raises(FormatError):
            read_fits(mp, "/bad.fits")

    def test_short_file_raises(self, mp):
        mp.write_file("/tiny.fits", b"SIMPLE")
        with pytest.raises(FormatError):
            read_fits(mp, "/tiny.fits")

    def test_bitpix_validated(self, mp, rng):
        data = rng.random((4, 4)).astype(np.float32)
        write_fits(mp, "/img.fits", ImageHDU(data))
        raw = bytearray(mp.read_file("/img.fits"))
        # Rewrite the BITPIX card with an unsupported value.
        bad = format_card(Card("BITPIX", 16))
        idx = raw.find(b"BITPIX")
        raw[idx : idx + 80] = bad
        mp.write_file("/img.fits", bytes(raw))
        with pytest.raises(FormatError, match="BITPIX"):
            read_fits(mp, "/img.fits")
