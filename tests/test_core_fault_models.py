"""Unit and property tests for the three fault models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fault_models import (
    SECTOR_SIZE,
    BitFlipFault,
    DroppedWriteFault,
    ShornWriteFault,
    make_fault_model,
)
from repro.errors import ConfigError
from repro.fusefs.interposer import CallDecision, PrimitiveCall
from repro.util.bitops import hamming_distance


def write_call(buf: bytes) -> PrimitiveCall:
    return PrimitiveCall("ffis_write",
                         {"fd": 3, "buf": buf, "size": len(buf), "offset": 0}, 0)


class TestBitFlip:
    def test_flips_exactly_two_bits(self, rng):
        original = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
        call = write_call(original)
        BitFlipFault().apply(call, np.random.default_rng(1))
        assert hamming_distance(original, call.args["buf"]) == 2

    def test_four_bit_variant(self, rng):
        """Footnote 3's ablation model."""
        original = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
        call = write_call(original)
        BitFlipFault(n_bits=4).apply(call, np.random.default_rng(2))
        assert hamming_distance(original, call.args["buf"]) in (3, 4)

    def test_size_and_offset_untouched(self, rng):
        call = write_call(b"\x00" * 64)
        BitFlipFault().apply(call, np.random.default_rng(0))
        assert call.args["size"] == 64
        assert call.args["offset"] == 0

    def test_positions_are_uniformish(self):
        """R4: positions should cover the buffer, not cluster."""
        hits = set()
        for seed in range(200):
            call = write_call(b"\x00" * 64)
            BitFlipFault().apply(call, np.random.default_rng(seed))
            buf = call.args["buf"]
            hits.add(next(i for i, b in enumerate(buf) if b))
        assert len(hits) > 30

    def test_empty_buffer_noop(self):
        call = write_call(b"")
        assert BitFlipFault().apply(call, np.random.default_rng(0)) is None
        assert call.args["buf"] == b""

    def test_mknod_flips_mode_or_dev(self):
        call = PrimitiveCall("ffis_mknod", {"path": "/n", "mode": 0o644, "dev": 0}, 0)
        BitFlipFault().apply(call, np.random.default_rng(3))
        assert (call.args["mode"], call.args["dev"]) != (0o644, 0)

    def test_mknod_flip_covers_all_32_bits(self):
        """Fig. 3b's uniform-position model: the whole 32-bit mode/dev
        field must be reachable (a regression capped ``start`` at 16,
        sheltering bits 17..31 from corruption forever)."""
        hit = set()
        for seed in range(600):
            call = PrimitiveCall("ffis_mknod",
                                 {"path": "/n", "mode": 0, "dev": 0}, 0)
            BitFlipFault(n_bits=1).apply(call, np.random.default_rng(seed))
            flipped = call.args["mode"] | call.args["dev"]
            hit |= {i for i in range(32) if flipped >> i & 1}
        assert hit == set(range(32))

    def test_chmod_flip_covers_all_32_bits(self):
        """chmod carries only ``mode``; the full field is still fair game."""
        hit = set()
        for seed in range(600):
            call = PrimitiveCall("ffis_chmod", {"path": "/n", "mode": 0}, 0)
            BitFlipFault(n_bits=1).apply(call, np.random.default_rng(seed))
            hit |= {i for i in range(32) if call.args["mode"] >> i & 1}
            assert "dev" not in call.args
        assert hit == set(range(32))

    def test_mknod_targets_both_fields(self):
        """With both fields present, the pick must not collapse to one."""
        targets = set()
        for seed in range(40):
            call = PrimitiveCall("ffis_mknod",
                                 {"path": "/n", "mode": 0, "dev": 0}, 0)
            BitFlipFault(n_bits=1).apply(call, np.random.default_rng(seed))
            targets.add("mode" if call.args["mode"] else "dev")
        assert targets == {"mode", "dev"}

    def test_invalid_nbits(self):
        with pytest.raises(ConfigError):
            BitFlipFault(n_bits=0)


class TestShornWrite:
    def test_prefix_preserved_tail_replaced(self, rng):
        original = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
        call = write_call(original)
        sw = ShornWriteFault(fraction=7 / 8)
        sw.apply(call, np.random.default_rng(1))
        buf = call.args["buf"]
        assert len(buf) == 4096
        assert buf[:3584] == original[:3584]
        assert buf[3584:] != original[3584:]

    def test_three_eighths_variant(self, rng):
        original = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
        call = write_call(original)
        ShornWriteFault(fraction=3 / 8).apply(call, np.random.default_rng(1))
        assert call.args["buf"][:1536] == original[:1536]

    def test_shear_point_sector_aligned(self):
        sw = ShornWriteFault(fraction=7 / 8)
        for size in (4096, 2880, 8192):
            point = sw.shear_point(size)
            assert point % SECTOR_SIZE == 0
            assert 0 <= point <= size

    def test_shear_point_sub_sector_buffers(self):
        """Buffers smaller than a sector still shear (degenerate path)."""
        sw = ShornWriteFault(fraction=7 / 8)
        for size in (513, 100, 8, 2):
            point = sw.shear_point(size)
            assert 0 < point < size

    def test_stale_tail_comes_from_previous_sector(self, rng):
        original = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
        call = write_call(original)
        ShornWriteFault(fraction=7 / 8, tail_policy="stale").apply(
            call, np.random.default_rng(1))
        tail = call.args["buf"][3584:]
        assert tail == original[3072:3584]

    def test_zeros_tail_policy(self, rng):
        original = bytes(rng.integers(1, 256, 4096, dtype=np.uint8))
        call = write_call(original)
        ShornWriteFault(tail_policy="zeros").apply(call, np.random.default_rng(1))
        assert call.args["buf"][3584:] == b"\x00" * 512

    def test_random_tail_policy_deterministic_per_rng(self, rng):
        original = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
        tails = []
        for _ in range(2):
            call = write_call(original)
            ShornWriteFault(tail_policy="random").apply(
                call, np.random.default_rng(9))
            tails.append(call.args["buf"][3584:])
        assert tails[0] == tails[1]

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ShornWriteFault(fraction=0.0)
        with pytest.raises(ConfigError):
            ShornWriteFault(fraction=1.0)
        with pytest.raises(ConfigError):
            ShornWriteFault(tail_policy="nonsense")

    @given(st.integers(2, 20000))
    @settings(max_examples=100, deadline=None)
    def test_shear_point_invariants(self, size):
        sw = ShornWriteFault(fraction=7 / 8)
        point = sw.shear_point(size)
        assert 0 <= point < size or point == size
        # Never loses more than one sector beyond the ideal fraction.
        assert point >= int(size * 7 / 8) - SECTOR_SIZE


class TestDroppedWrite:
    def test_suppresses(self):
        call = write_call(b"data")
        assert DroppedWriteFault().apply(call, np.random.default_rng(0)) is \
            CallDecision.SUPPRESS

    def test_buffer_untouched(self):
        call = write_call(b"data")
        DroppedWriteFault().apply(call, np.random.default_rng(0))
        assert call.args["buf"] == b"data"


class TestRegistry:
    def test_all_names(self):
        assert isinstance(make_fault_model("BF"), BitFlipFault)
        assert isinstance(make_fault_model("BIT_FLIP", n_bits=4), BitFlipFault)
        assert isinstance(make_fault_model("sw"), ShornWriteFault)
        assert isinstance(make_fault_model("DROPPED_WRITE"), DroppedWriteFault)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_fault_model("EXPLODE")

    def test_params_forwarded(self):
        model = make_fault_model("SW", fraction=3 / 8, tail_policy="zeros")
        assert model.fraction == 3 / 8
        assert model.tail_policy == "zeros"
