"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network, so PEP 517 editable installs (which build an editable wheel)
fail.  This shim lets ``pip install -e . --no-use-pep517`` (and plain
``python setup.py develop``) work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
