#!/usr/bin/env python
"""CI gate on the committed engine-benchmark baseline.

Reads ``benchmarks/results/BENCH_engine.json`` (refreshed by running the
engine benches: ``PYTHONPATH=src python -m pytest benchmarks/ -q -k
"engine_parallel or fused_sweep or prefix_replay_figure7"``) and fails
when a headline speedup regresses below its floor:

* ``engine_parallel.speedup >= 1.5`` -- enforced when the baseline was
  *recorded* on a multi-core host (``cores >= 2``); on a single core
  the pool degenerates to serial-plus-fork-overhead by design and the
  number is reported, not gated.  A single-core baseline is only a
  valid reason to skip on a single-core *runner*: when this script
  itself runs on >= 2 cores against a 1-core baseline, the gate has
  silently never fired, so that combination **fails** with instructions
  to re-record (CI re-runs the engine_parallel bench on its own runner
  right before this gate, which refreshes the recorded core count).
* ``prefix_replay_figure7.speedup >= 1.8`` -- unconditional: replay
  wins by skipping work, not by adding cores.

Exit status 0 on pass, 1 on regression or a malformed baseline, 2 when
the baseline file is missing entirely (regenerate it -- see above).
"""

from __future__ import annotations

import json
import os
import sys

BASELINE = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "results",
    "BENCH_engine.json")

PARALLEL_FLOOR = 1.5
REPLAY_FLOOR = 1.8


def check(baseline: dict, runner_cores: int = None) -> list:
    if runner_cores is None:
        runner_cores = os.cpu_count() or 1
    failures = []

    parallel = baseline.get("engine_parallel")
    if parallel is None:
        failures.append("baseline has no engine_parallel entry")
    elif parallel.get("cores", 1) >= 2:
        speedup = parallel.get("speedup", 0.0)
        if speedup < PARALLEL_FLOOR:
            failures.append(
                f"engine_parallel.speedup {speedup} < {PARALLEL_FLOOR} "
                f"on {parallel['cores']} cores")
    elif runner_cores >= 2:
        # Skipping here would mean the 1.5x gate never fires anywhere:
        # the only machine that could enforce it is the one reading a
        # baseline that exempts itself.  Refuse the combination.
        failures.append(
            f"engine_parallel baseline was recorded on "
            f"{parallel.get('cores', 1)} core(s) but this runner has "
            f"{runner_cores}; the {PARALLEL_FLOOR}x gate would be "
            "silently skipped -- re-record the baseline here "
            "(PYTHONPATH=src python -m pytest "
            "benchmarks/test_engine_parallel.py -q) before gating")
    else:
        print(f"engine_parallel: recorded on {parallel.get('cores', 1)} "
              f"core(s); speedup {parallel.get('speedup')} reported, "
              "not gated (single-core runner)")

    replay = baseline.get("prefix_replay_figure7")
    if replay is None:
        failures.append("baseline has no prefix_replay_figure7 entry")
    else:
        speedup = replay.get("speedup", 0.0)
        if speedup < REPLAY_FLOOR:
            failures.append(
                f"prefix_replay_figure7.speedup {speedup} < {REPLAY_FLOOR}")

    for name, entry in sorted(baseline.items()):
        if isinstance(entry, dict) and entry.get("records_identical") is False:
            failures.append(f"{name}: records_identical is False")
    return failures


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else BASELINE
    try:
        with open(path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        # Distinct exit code: "nothing to gate on" is a setup problem,
        # not a regression, and callers may want to tell them apart.
        print(f"bench baseline missing: {path} -- regenerate with "
              'PYTHONPATH=src python -m pytest benchmarks/ -q -k '
              '"engine_parallel or fused_sweep or prefix_replay_figure7" '
              "and commit the refreshed JSON", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"cannot read bench baseline {path}: {exc}", file=sys.stderr)
        return 1

    failures = check(baseline)
    if failures:
        for failure in failures:
            print(f"BENCH REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("bench baseline OK: "
          f"engine_parallel {baseline['engine_parallel']['speedup']}x "
          f"(cores={baseline['engine_parallel']['cores']}), "
          "prefix_replay_figure7 "
          f"{baseline['prefix_replay_figure7']['speedup']}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
